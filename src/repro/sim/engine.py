"""Event-driven simulation kernel shared by the single-UE and cell simulators.

Both of the library's replay engines — the single-device
:class:`~repro.sim.simulator.TraceSimulator` and the multi-device
:class:`~repro.basestation.cell.CellSimulator` — are thin façades over the
:class:`SimulationEngine` defined here: a heap-based event queue with typed
events (packet arrival, scheduled fast-dormancy, MakeActive buffer release,
inactivity-timer expiry, handover departure, cell-load sampling) driving
one-or-many per-UE contexts against one shared clock.  Each :class:`UeContext` bundles an
:class:`~repro.rrc.state_machine.RrcStateMachine`, a
:class:`~repro.core.policy.RadioPolicy` and an energy accumulator.

The per-UE semantics (demotion scheduling, MakeActive buffering, tie-breaks,
trailing tail) are exactly those documented in ``docs/DESIGN.md`` and the
:mod:`repro.sim.simulator` module docstring; the event ordering encodes
them structurally:

* at equal times, a scheduled **buffer release** fires before a scheduled
  **fast dormancy**, which fires before a **packet arrival** (the demotion
  was scheduled first, so it fires strictly before the packet and the
  packet pays a fresh promotion);
* a packet arriving *strictly before* a scheduled demotion or release
  cancels it (lazy invalidation via per-UE sequence numbers).

Running one UE through the kernel is byte-identical to the pre-kernel
``TraceSimulator`` loop (asserted by the equivalence property tests in
``tests/sim/test_engine_equivalence.py``).

Streaming
---------

The kernel consumes packet *streams*, not materialised traces: at any
moment it holds one pending packet per UE plus at most one chunk-local
block per source, so a cell simulation's memory is bounded by the number
of attached UEs rather than the total packet count.  Sources implementing
the block protocol (``packet_blocks()`` — chunked application streams, or
a :class:`~repro.traces.packet.PacketTrace` as one block) are walked as
arrays by plain indexing; anything else falls back to one ``next()`` per
packet.  In streaming mode (``collect=False``) each context folds its
energy accounting incrementally — per-packet data energy as packets are
emitted, state/switch totals folded *inside the state machine at
transition time* (``fold_history``; bit-equal to draining recorded
history, with no history objects) — so 10k+-device cells run in bounded
memory (see :mod:`repro.traces.streaming` for lazy workload generators,
and ``docs/DESIGN.md`` §2.2 for the hot-path contract).

Cell mode
---------

Passing a :class:`DormancyStation` puts the kernel in cell mode: every
scheduled fast-dormancy event becomes a *request* that the station may deny
(3GPP Release 8 network-controlled fast dormancy), the kernel maintains a
live :class:`CellLoad` (active-device count via inactivity-timer-expiry
events, switch timestamps in a sliding window) and can record a
:class:`LoadSample` time series at a fixed cadence.

Sharding
--------

A run invoked with ``finish=False`` returns with every timeline still
*open* (plus the observations — ``last_emitted``, the last processed event
time — that :func:`resolve_end_time` turns into a close time).  This is
the kernel half of sharded cell execution: disjoint device partitions run
in separate kernels (separate processes), and the merge closes every
device at the *globally* resolved end time with the exact float arithmetic
of a single-process finish — see :mod:`repro.basestation.cell` and
``docs/DESIGN.md`` §2.1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.policy import RadioPolicy
from ..energy.accounting import (
    DataEnergyModel,
    EnergyAccountant,
    EnergyBreakdown,
    assemble_breakdown,
)
from ..rrc.profiles import CarrierProfile
from ..rrc.state_machine import RrcStateMachine
from ..rrc.states import RadioState
from ..rrc.tables import transition_table
from ..traces.packet import Direction, Packet, PacketTrace
from .results import SessionDelay, SimulationResult

__all__ = [
    "CellLoad",
    "DormancyStation",
    "EventKind",
    "KernelResult",
    "LoadSample",
    "SimulationEngine",
    "StreamOrderError",
    "UeContext",
    "resolve_end_time",
]


class StreamOrderError(ValueError):
    """A packet stream yielded a timestamp earlier than one already consumed.

    Raised by the kernel the moment the violation is observed.  The run
    aborts *atomically*: every attached :class:`UeContext` is marked
    aborted before the error propagates — its folded totals, switch-count
    accessors and breakdown raise, and its machine refuses further
    advancement — no :class:`KernelResult` is produced, and therefore no
    partial timeline can leak into a shard merge.
    """


#: Streaming mode keeps at most this many SessionDelay records per UE (a
#: sample; totals are tracked in counters), so MakeActive cells stay O(1)
#: memory per UE.  Collect mode (single-UE runs) keeps everything.
_SESSION_DELAY_SAMPLE_CAP = 512

#: Prune a UE's per-flow last-activity table once it reaches this size.
#: Entries older than the session idle gap classify identically to absent
#: ones, so pruning never changes behaviour.
_FLOW_TABLE_PRUNE_SIZE = 256


class EventKind(IntEnum):
    """Typed kernel events; the integer value is the tie-break priority.

    At equal times a buffer release fires before a scheduled fast dormancy,
    which fires before a handover departure, which fires before an
    inactivity-timer expiry, which fires before a packet arrival — the
    ordering that reproduces the documented tie-break semantics (a demotion
    scheduled at exactly a packet's arrival time fires strictly before the
    packet, and anything scheduled at exactly a UE's departure instant that
    precedes it in priority is still charged to the departure cell).
    """

    RELEASE = 0        # MakeActive buffered-session release
    DORMANCY = 1       # scheduled fast-dormancy request
    HANDOVER = 2       # UE departs this cell (metro mobility)
    TIMER = 3          # inactivity-timer expiry (cell-load tracking)
    ARRIVAL = 4        # packet arrival
    SAMPLE = 5         # periodic cell-load sample


#: The event kinds as plain ints — what the hot loop pushes and compares
#: (an IntEnum ``int()`` call per event is pure overhead).
_RELEASE = int(EventKind.RELEASE)
_DORMANCY = int(EventKind.DORMANCY)
_HANDOVER = int(EventKind.HANDOVER)
_TIMER = int(EventKind.TIMER)
_ARRIVAL = int(EventKind.ARRIVAL)
_SAMPLE = int(EventKind.SAMPLE)


class _ArrivalSource:
    """Per-UE packet supply: a block-walking cursor over one stream.

    Sources implementing the block protocol (``packet_blocks()`` — chunked
    application streams, materialised :class:`PacketTrace`\\ s) are walked
    as chunk-local arrays by plain list indexing; anything else falls back
    to one ``next()`` per packet.  Either way the kernel sees the same
    packets in the same order, and at most one block (plus whatever the
    source buffers) is held in memory per UE.
    """

    __slots__ = ("blocks", "it", "buf", "idx", "n")

    def __init__(self, stream: "Iterator[Packet] | Iterable[Packet]") -> None:
        blocks = getattr(stream, "packet_blocks", None)
        if blocks is not None:
            self.blocks: Iterator[Sequence[Packet]] | None = blocks()
            self.it: Iterator[Packet] | None = None
        else:
            self.blocks = None
            self.it = iter(stream)
        self.buf: Sequence[Packet] = ()
        self.idx = 0
        self.n = 0

    def refill(self) -> Packet | None:
        """Fetch the next packet once the current block is exhausted."""
        blocks = self.blocks
        if blocks is None:
            return next(self.it, None)
        while True:
            block = next(blocks, None)
            if block is None:
                return None
            if block:
                self.buf = block
                self.idx = 1
                self.n = len(block)
                return block[0]


@dataclass(frozen=True, slots=True)
class LoadSample:
    """One point of the cell-load time series recorded by SAMPLE events."""

    time: float
    active_devices: int
    switches_last_minute: int


class CellLoad:
    """Live cell-load bookkeeping maintained by the kernel in cell mode.

    Tracks the number of non-Idle devices (kept exact by inactivity-timer
    expiry events), the running peak, and the timestamps of
    signalling-relevant switches (promotions and granted fast dormancies)
    with a sliding window for switches-per-minute style queries.
    """

    __slots__ = (
        "total_devices",
        "active_devices",
        "peak_active_devices",
        "switch_times",
        "window_s",
        "_recent",
        "_recent_start",
    )

    def __init__(self, total_devices: int, window_s: float = 60.0) -> None:
        if total_devices < 0:
            raise ValueError("total_devices must be non-negative")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.total_devices = total_devices
        self.active_devices = 0
        self.peak_active_devices = 0
        self.switch_times: list[float] = []
        self.window_s = window_s
        # The recent-switch window is a list pruned by advancing a start
        # index (cheaper than a deque for the append-mostly access pattern).
        self._recent: list[float] = []
        self._recent_start = 0

    def note_switch(self, time: float) -> None:
        """Record one signalling-relevant switch at ``time``."""
        self.switch_times.append(time)
        self._recent.append(time)

    def switches_within_window(self, time: float) -> int:
        """Switches recorded in the last ``window_s`` seconds before ``time``.

        The window is half-open — a switch exactly ``window_s`` seconds ago
        has aged out — consistent with the half-open windows of
        :func:`repro.metrics.switches.peak_per_window`.
        """
        recent = self._recent
        start = self._recent_start
        while start < len(recent) and time - recent[start] >= self.window_s:
            start += 1
        self._recent_start = start
        # Compact occasionally so the pruned prefix cannot grow unbounded.
        if start > 4096:
            del recent[:start]
            self._recent_start = 0
            start = 0
        return len(recent) - start

    def activate(self) -> None:
        """One device left Idle."""
        self.active_devices += 1
        if self.active_devices > self.peak_active_devices:
            self.peak_active_devices = self.active_devices

    def deactivate(self) -> None:
        """One device reached Idle."""
        self.active_devices -= 1

    @classmethod
    def merged(cls, loads: Sequence["CellLoad"]) -> "CellLoad":
        """Combine the loads of disjoint device partitions (shards).

        Switch timelines interleave exactly — each input's is time-ordered
        and the partitions are disjoint — so windowed switch queries over
        the merged load equal those of a single-process run.  The
        *instantaneous* active-device peak is not recoverable from
        per-shard peaks (shards peak at different moments), so
        ``peak_active_devices`` is the sum of the inputs' peaks: an upper
        bound on the true cell peak, exact for a single input.
        """
        if not loads:
            raise ValueError("at least one CellLoad is required")
        window = loads[0].window_s
        if any(load.window_s != window for load in loads):
            raise ValueError("cannot merge CellLoads with different windows")
        combined = cls(
            total_devices=sum(load.total_devices for load in loads),  # repro-lint: allow[left-fold] reason=integer device count; exact order-independent arithmetic
            window_s=window,
        )
        combined.switch_times = list(
            heapq.merge(*(load.switch_times for load in loads))
        )
        combined._recent = list(combined.switch_times)
        combined.active_devices = sum(load.active_devices for load in loads)  # repro-lint: allow[left-fold] reason=integer device count; exact order-independent arithmetic
        combined.peak_active_devices = sum(  # repro-lint: allow[left-fold] reason=integer per-shard peaks; exact order-independent arithmetic
            load.peak_active_devices for load in loads
        )
        return combined


class DormancyStation:
    """Base-station hook arbitrating fast-dormancy requests in cell mode.

    The kernel calls :meth:`decide` once per fired fast-dormancy request,
    passing the live :class:`CellLoad`; returning ``False`` denies the
    request (the device stays on its inactivity timers until its next
    scheduled request).  The default grants everything — the paper's
    simplified assumption.
    """

    #: Declare ``True`` only when :meth:`decide` grants unconditionally and
    #: keeps no per-request state: the kernel then skips the per-request
    #: call entirely (the grant/deny counters are unchanged either way).
    always_grants: bool = False

    def decide(self, ue_id: int, time: float, load: CellLoad) -> bool:
        """Grant (``True``) or deny (``False``) one fast-dormancy request."""
        return True


class UeContext:
    """Per-UE kernel state: RRC machine + policy + buffer + energy accumulator.

    In *collect* mode (single-UE runs) the context records every effective
    packet and session delay so the façade can build a full
    :class:`~repro.sim.results.SimulationResult`.  In *streaming* mode
    (cells) it accumulates the energy breakdown incrementally, keeps no
    per-packet state, caps the stored session-delay records at a fixed
    sample (full totals live in :attr:`delayed_sessions` /
    :attr:`total_delay_s`) and prunes its per-flow activity table, so
    memory stays O(1) per UE regardless of trace length.
    """

    __slots__ = (
        "ue_id",
        "machine",
        "policy",
        "last_flow_activity",
        "buffering",
        "release_time",
        "buffered_packets",
        "buffered_arrivals",
        "buffered_flows",
        "dormancy_seq",
        "late_dormancy_seq",
        "release_seq",
        "timer_target",
        "timer_pending",
        "collect",
        "aborted",
        "departed",
        "observes_packets",
        "delays_activation",
        "effective_packets",
        "session_delays",
        "delayed_sessions",
        "total_delay_s",
        "flow_prune_at",
        "last_effective",
        "packet_count",
        "was_active",
        "dormancy_requests",
        "dormancy_granted",
        "dormancy_denied",
        "_prev_transfer_ts",
        "_data_j",
        "_data_time_s",
    )

    def __init__(
        self,
        ue_id: int,
        profile: CarrierProfile,
        policy: RadioPolicy,
        collect: bool,
        start_time: float = 0.0,
    ) -> None:
        self.ue_id = ue_id
        # Streaming contexts fold state-time/switch totals inside the
        # machine at transition time (bit-equal to draining the recorded
        # history, with no history objects); collect mode records the full
        # interval/switch timeline for single-UE results.  A non-zero
        # ``start_time`` attaches the UE mid-run (a metro visit that began
        # with a handover into this cell): its timeline — and therefore its
        # Idle time — starts at that instant, not at t=0.
        self.machine = RrcStateMachine(profile, start_time=start_time,
                                       fold_history=not collect)
        self.policy = policy
        self.last_flow_activity: dict[int, float] = {}
        self.buffering = False
        self.release_time = 0.0
        self.buffered_packets: list[Packet] = []
        self.buffered_arrivals: list[SessionDelay] = []
        self.buffered_flows: set[int] = set()
        self.dormancy_seq = 0
        # Sequence number of a dormancy scheduled with zero effective wait
        # while processing an ARRIVAL: it pops *after* the kind-1 slot of
        # its timestamp (right behind the arrival that scheduled it), so
        # load-log entries it produces are keyed by the arrival's kind to
        # keep the logged key order equal to pop order.
        self.late_dormancy_seq = -1
        self.release_seq = 0
        # Inactivity-timer-expiry scheduling (cell mode): the current true
        # deadline (last activity + full demotion horizon) and whether one
        # TIMER event for this UE is in the heap.  Activity only *moves*
        # the deadline; the queued event defers itself forward when it
        # pops early, so dense traffic keeps one queued timer per UE
        # instead of one per packet.
        self.timer_target = 0.0
        self.timer_pending = False
        self.collect = collect
        self.aborted = False
        # Set by a HANDOVER event: the machine is closed at the departure
        # instant and the context takes no further events (stale queued
        # timers are ignored, finalize leaves it untouched).
        self.departed = False
        # Which optional policy hooks are actually overridden: calling a
        # known no-op base hook per packet is pure overhead, and a policy
        # that never delays activation lets streaming contexts skip the
        # Idle-state peek on every arrival.
        policy_type = type(policy)
        self.observes_packets = (
            policy_type.observe_packet is not RadioPolicy.observe_packet
        )
        self.delays_activation = (
            policy_type.activation_delay is not RadioPolicy.activation_delay
        )
        self.effective_packets: list[Packet] = []
        self.session_delays: list[SessionDelay] = []
        self.delayed_sessions = 0
        self.total_delay_s = 0.0
        self.flow_prune_at = _FLOW_TABLE_PRUNE_SIZE
        self.last_effective: float | None = None
        self.packet_count = 0
        self.was_active = False
        self.dormancy_requests = 0
        self.dormancy_granted = 0
        self.dormancy_denied = 0
        # Streaming-mode incremental data-energy accounting.
        self._prev_transfer_ts: float | None = None
        self._data_j = 0.0
        self._data_time_s = 0.0

    # -- streaming accounting ----------------------------------------------------------

    def account_transfer(self, model: DataEnergyModel, packet: Packet,
                         time: float) -> None:
        """Fold one emitted packet into the incremental data-energy totals.

        Mirrors :meth:`~repro.energy.accounting.DataEnergyModel.packet_transfers`
        packet by packet so the folded totals are float-identical to the
        batch computation over the same effective sequence.  (The kernel
        inlines this arithmetic over the model's precomputed constants;
        this method is the readable reference and the one-off entry
        point.)
        """
        uplink = packet.direction.is_uplink
        if self._prev_transfer_ts is None:
            duration = model.serialization_time(packet.size, uplink)
        else:
            gap = time - self._prev_transfer_ts
            if gap <= model.burst_gap:
                duration = gap
            else:
                duration = model.serialization_time(packet.size, uplink)
        self._data_j += duration * (
            model.send_power_w if uplink else model.recv_power_w
        )
        self._data_time_s += duration
        self._prev_transfer_ts = time

    def mark_aborted(self) -> None:
        """Poison this context after a failed kernel run.

        Reading folded totals from — or further advancing — a context
        whose run died mid-stream would expose a partial timeline; after
        this call the accessors raise and the machine refuses further
        events (it is closed at its current instant, so ``finish``/
        ``advance_to`` on it raise too).
        """
        self.aborted = True
        machine = self.machine
        if not machine.finished:
            machine.seal()

    def _check_not_aborted(self) -> None:
        if self.aborted:
            raise RuntimeError(
                f"UE {self.ue_id}: kernel run aborted mid-stream; partial "
                "timelines are not observable (re-run with a valid stream)"
            )

    def folded_totals(self) -> tuple[float, float, float, float, float, float]:
        """The incremental energy totals folded so far (streaming mode).

        Returns ``(data_j, data_time_s, active_time_s, high_idle_time_s,
        idle_time_s, switch_j)`` — the exact running sums the breakdown
        assembles.  Shard execution exports these before the timeline is
        closed, so the cross-shard merge can fold the final open interval
        with the same float operations the single-process finish would
        have used.
        """
        self._check_not_aborted()
        (active_s, high_idle_s, idle_s, switch_j,
         _, _, _) = self.machine.folded_state_totals()
        return (
            self._data_j,
            self._data_time_s,
            active_s,
            high_idle_s,
            idle_s,
            switch_j,
        )

    @property
    def promotions(self) -> int:
        """Promotions so far (works in either history mode)."""
        self._check_not_aborted()
        return self.machine.promotion_count

    @property
    def timer_demotions(self) -> int:
        """Timer demotions so far (works in either history mode)."""
        self._check_not_aborted()
        return self.machine.timer_demotion_count

    @property
    def fast_demotions(self) -> int:
        """Fast-dormancy demotions so far (works in either history mode)."""
        self._check_not_aborted()
        return self.machine.fast_demotion_count

    def build_breakdown(self, profile: CarrierProfile) -> EnergyBreakdown:
        """Assemble the folded totals into an :class:`EnergyBreakdown`."""
        self._check_not_aborted()
        (active_s, high_idle_s, idle_s, switch_j,
         promotions, timer_demotions,
         fast_demotions) = self.machine.folded_state_totals()
        return assemble_breakdown(
            profile,
            data_j=self._data_j,
            data_time_s=self._data_time_s,
            active_time_s=active_s,
            high_idle_time_s=high_idle_s,
            idle_time_s=idle_s,
            switch_j=switch_j,
            promotions=promotions,
            demotions=timer_demotions + fast_demotions,
        )


def resolve_end_time(
    last_emitted: float | None, max_now: float, trailing_time: float
) -> float:
    """The timeline close time implied by a kernel run's final observations.

    This is the one place the end-of-run rule lives: the trailing tail is
    charged after the last *emitted* packet (a run that never emitted has
    no tail and closes at the last processed event), never ending before
    any machine's current time.  Shard merging reuses it with the
    *global* maxima so a sharded cell closes every device's timeline at
    exactly the instant a single-process run would.
    """
    if last_emitted is None:
        return max_now
    return max(last_emitted + trailing_time, max_now)


@dataclass(frozen=True, slots=True)
class KernelResult:
    """What one kernel execution produced, before façade-specific assembly.

    With ``finish=False`` (shard mode) the timelines are still *open*:
    ``end_time`` holds the last processed event time, ``last_emitted`` the
    newest emitted-packet timestamp (``None`` if nothing was emitted), and
    the caller owns the close — either via
    :meth:`SimulationEngine.finalize` or by folding the open tails into a
    cross-shard merge at a globally resolved end time.
    """

    contexts: Mapping[int, UeContext]
    end_time: float
    load: CellLoad | None = None
    samples: tuple[LoadSample, ...] = ()
    last_emitted: float | None = None
    finished: bool = True
    #: Time of the last *real* (non-SAMPLE) event the kernel popped —
    #: including stale timer deferrals and invalidated dormancy events
    #: that touched no machine.  This is the horizon the periodic
    #: load-sample chain runs to; the vector backend reads it to
    #: reconstruct a byte-identical sample series around its scalar
    #: fallback group.  ``None`` when no real event was processed.
    last_event_time: float | None = None


class SimulationEngine:
    """Heap-based event kernel driving one-or-many UEs against one clock.

    Parameters
    ----------
    profile:
        Carrier profile shared by every UE (timers, powers, switch costs).
    data_model:
        Optional custom :class:`~repro.energy.accounting.DataEnergyModel`.
    session_idle_gap:
        Quiet time after which a flow's next packet counts as a new session
        (MakeActive eligibility); defaults to the carrier's ``t1 + t2``.
    trailing_time:
        Extra simulated time after the last emitted packet so the final
        tail is charged; defaults to ``t1 + t2 + 1`` seconds.
    """

    def __init__(
        self,
        profile: CarrierProfile,
        data_model: DataEnergyModel | None = None,
        session_idle_gap: float | None = None,
        trailing_time: float | None = None,
    ) -> None:
        self._profile = profile
        self._accountant = EnergyAccountant(profile, data_model)
        self._session_idle_gap = (
            session_idle_gap
            if session_idle_gap is not None
            else profile.total_inactivity_timeout
        )
        self._trailing_time = (
            trailing_time
            if trailing_time is not None
            else profile.total_inactivity_timeout + 1.0
        )
        if self._session_idle_gap < 0:
            raise ValueError("session_idle_gap must be non-negative")
        if self._trailing_time < 0:
            raise ValueError("trailing_time must be non-negative")

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile every UE runs against."""
        return self._profile

    @property
    def accountant(self) -> EnergyAccountant:
        """The energy accountant shared by all of this engine's runs."""
        return self._accountant

    @property
    def trailing_time(self) -> float:
        """Extra simulated seconds charged after the last emitted packet."""
        return self._trailing_time

    # -- single-UE façade entry point --------------------------------------------------

    def run_single(self, trace: PacketTrace, policy: RadioPolicy) -> SimulationResult:
        """Replay ``trace`` under ``policy`` — the TraceSimulator semantics.

        ``policy.prepare``/``reset`` must already have been called (the
        façade owns policy lifecycle).  Produces results byte-identical to
        the pre-kernel single-UE loop.
        """
        if not trace:
            # A never-promoted radio has no tail: close the timeline at t=0
            # rather than charging trailing time from an Idle machine.
            machine = RrcStateMachine(self._profile, start_time=0.0)
            machine.finish(0.0)
            empty = PacketTrace((), name=trace.name)
            return SimulationResult(
                policy_name=policy.name,
                profile_key=self._profile.key,
                trace_name=trace.name,
                breakdown=self._accountant.account(
                    empty, machine.intervals, machine.switches
                ),
                intervals=tuple(machine.intervals),
                switches=(),
                effective_trace=empty,
                gap_decisions=(),
                session_delays=(),
            )

        ue = UeContext(0, self._profile, policy, collect=True)
        outcome = self.run({0: trace}, {0: ue})
        machine = ue.machine
        effective_trace = PacketTrace(ue.effective_packets, name=trace.name)
        breakdown = self._accountant.account(
            effective_trace, machine.intervals, machine.switches
        )
        from .simulator import _gap_decisions  # façade-level derived metric

        return SimulationResult(
            policy_name=policy.name,
            profile_key=self._profile.key,
            trace_name=trace.name,
            breakdown=breakdown,
            intervals=tuple(machine.intervals),
            switches=tuple(machine.switches),
            effective_trace=effective_trace,
            gap_decisions=tuple(_gap_decisions(effective_trace, machine.switches)),
            session_delays=tuple(ue.session_delays),
        )

    # -- the kernel --------------------------------------------------------------------

    def run(
        self,
        streams: Mapping[int, Iterator[Packet] | Iterable[Packet]],
        contexts: Mapping[int, UeContext],
        station: DormancyStation | None = None,
        load: CellLoad | None = None,
        sample_interval_s: float | None = None,
        finish: bool = True,
        handovers: Mapping[int, float] | None = None,
        load_log: list[tuple[float, int, int, str]] | None = None,
    ) -> KernelResult:
        """Drive every UE's packet stream through the shared event queue.

        Parameters
        ----------
        streams:
            Per-UE packet sources (iterators or iterables), each yielding
            packets in non-decreasing timestamp order.  Only the next
            pending packet of each stream is held in memory.
        contexts:
            Per-UE :class:`UeContext` keyed like ``streams``.
        station:
            Optional base-station arbiter; presence switches the kernel to
            cell mode (dormancy arbitration + load tracking via timer
            events).
        load:
            The :class:`CellLoad` to maintain; required when ``station`` is
            given (the cell façade owns it so it can also snapshot it).
        sample_interval_s:
            When set (cell mode), record a :class:`LoadSample` every this
            many seconds while packet/timer events remain.
        finish:
            When ``False``, return with every timeline still *open* once
            the event queue drains: the caller resolves the close time
            (possibly across several shard runs) and applies it via
            :meth:`finalize` — or folds the open tails itself.
        handovers:
            Optional per-UE departure times (metro mobility).  At its
            departure instant a UE's MakeActive buffer (if any) is force
            released, its pending dormancy/timer events are cancelled, its
            machine is closed with the exact :meth:`RrcStateMachine.finish`
            float operations, and — in cell mode — it leaves the live load
            count.  The UE's packet stream must end strictly before its
            departure time; a later packet aborts the run.  See
            ``docs/DESIGN.md`` §4 (handover contract).
        load_log:
            When given (cell mode), every :class:`CellLoad` mutation this
            run performs is also appended to the list as ``(event_time,
            event_kind, ue_id, op)`` with ``op`` one of ``"act"`` /
            ``"deact"`` / ``"switch"`` — keyed by the *popped event* that
            caused it, with one deliberate remap: a dormancy that fires at
            the very timestamp of the ARRIVAL that scheduled it (zero
            effective wait, e.g. MakeIdle) pops *behind* that arrival —
            after the kind-1 slot of its timestamp — and is therefore
            keyed by the arrival kind.  With that remap a stable sort of
            the entries by ``(time, kind, ue_id)`` reproduces the exact
            pop order of the heap.  The vector backend uses
            this to interleave a scalar fallback group's load mutations
            with analytically derived ones (see
            :mod:`repro.sim.vector_engine`); normal runs pass ``None``
            and pay only dead branches.
        """
        if station is not None and load is None:
            raise ValueError("cell mode (station=...) requires a CellLoad")
        if sample_interval_s is not None and sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if handovers:
            unknown = [ue_id for ue_id in handovers if ue_id not in contexts]
            if unknown:
                raise ValueError(
                    f"handover scheduled for unknown UE(s) {sorted(unknown)}"
                )

        profile = self._profile
        data_model = self._accountant.data_model
        session_idle_gap = self._session_idle_gap
        cell_mode = station is not None
        # Time for an untouched radio to demote all the way to Idle — when
        # an inactivity-timer-expiry event is scheduled after each activity.
        idle_after = transition_table(profile).idle_after
        # Station fast path: an unconditionally-granting, stateless station
        # (the paper's accept-all assumption) needs no load snapshot per
        # request.
        station_always_grants = cell_mode and getattr(
            station, "always_grants", False
        )
        # Flat per-packet energy constants (see repro.rrc.tables for the
        # byte-identity contract of precomputed model constants).
        burst_gap = data_model.burst_gap
        min_packet_time = data_model.min_packet_time
        uplink_rate = data_model.uplink_rate
        downlink_rate = data_model.downlink_rate
        send_power_w = data_model.send_power_w
        recv_power_w = data_model.recv_power_w
        uplink_direction = Direction.UPLINK

        heap: list[tuple[float, int, int, int, object]] = []
        heappush = heapq.heappush
        serial = 0
        sources: dict[int, _ArrivalSource] = {}
        real_events = 0  # non-SAMPLE events still queued
        samples: list[LoadSample] = []

        def push(time: float, kind: int, ue_id: int, payload: object) -> None:
            nonlocal serial, real_events
            serial += 1
            if kind != _SAMPLE:
                real_events += 1
            heappush(heap, (time, kind, ue_id, serial, payload))

        def pull_arrival(ue_id: int, after: float) -> None:
            """Queue the next packet of one UE's stream, validating order."""
            src = sources[ue_id]
            idx = src.idx
            if idx < src.n:
                packet = src.buf[idx]
                src.idx = idx + 1
            else:
                packet = src.refill()
                if packet is None:
                    return
            timestamp = packet.timestamp
            if timestamp < after:
                raise StreamOrderError(
                    f"packet stream for UE {ue_id} is not time-ordered: "
                    f"{timestamp} after {after}"
                )
            nonlocal serial, real_events
            serial += 1
            real_events += 1
            heappush(heap, (timestamp, _ARRIVAL, ue_id, serial, packet))

        def sync_load(ue: UeContext, log_kind: int) -> None:
            """Reconcile the cell's active-device count with ``ue``'s state."""
            active = ue.machine.state is not RadioState.IDLE
            if active and not ue.was_active:
                load.activate()
                if load_log is not None:
                    load_log.append((time, log_kind, ue_id, "act"))
            elif not active and ue.was_active:
                load.deactivate()
                if load_log is not None:
                    load_log.append((time, log_kind, ue_id, "deact"))
            ue.was_active = active

        def emit(ue: UeContext, packet: Packet, time: float) -> None:
            """Transfer one packet at effective time ``time``."""
            promoted = ue.machine.notify_activity(time)
            # Exact comparison is the boundary contract: time IS
            # packet.timestamp (same float) unless MakeActive held the
            # packet, in which case the release time replaces it.
            if packet.timestamp == time:
                effective = packet
            else:
                # Direct construction (not dataclasses.replace): this runs
                # once per buffered MakeActive packet — the PR 5 packet-block
                # contract.
                effective = Packet(
                    timestamp=time,
                    size=packet.size,
                    direction=packet.direction,
                    flow_id=packet.flow_id,
                    app=packet.app,
                )
            if ue.collect:
                ue.effective_packets.append(effective)
            else:
                # Inline of UeContext.account_transfer over the model's
                # precomputed constants: same comparisons, same float
                # operations, same accumulation order.
                uplink = effective.direction is uplink_direction
                prev = ue._prev_transfer_ts
                if prev is None:
                    rate = uplink_rate if uplink else downlink_rate
                    duration = effective.size / rate
                    if duration < min_packet_time:
                        duration = min_packet_time
                else:
                    gap = time - prev
                    if gap <= burst_gap:
                        duration = gap
                    else:
                        rate = uplink_rate if uplink else downlink_rate
                        duration = effective.size / rate
                        if duration < min_packet_time:
                            duration = min_packet_time
                ue._data_j += duration * (
                    send_power_w if uplink else recv_power_w
                )
                ue._data_time_s += duration
                ue._prev_transfer_ts = time
            ue.packet_count += 1
            ue.last_effective = time
            if ue.observes_packets:
                ue.policy.observe_packet(time, effective)
            if cell_mode:
                if promoted:
                    load.note_switch(time)
                    if load_log is not None:
                        load_log.append((time, kind, ue.ue_id, "switch"))
                # Inline of sync_load: after an emit the machine is Active.
                if not ue.was_active:
                    load.activate()
                    ue.was_active = True
                    if load_log is not None:
                        load_log.append((time, kind, ue.ue_id, "act"))
                # Move the expiry deadline; queue an event only when none
                # is in flight (it defers itself forward on early pops).
                ue.timer_target = time + idle_after
                if not ue.timer_pending:
                    ue.timer_pending = True
                    nonlocal serial, real_events
                    serial += 1
                    real_events += 1
                    heappush(heap, (ue.timer_target, _TIMER, ue.ue_id,
                                    serial, 0))

        def ask_dormancy(ue: UeContext, time: float) -> None:
            """Ask the policy for a demotion wait after activity at ``time``."""
            wait = ue.policy.dormancy_wait(time)
            ue.dormancy_seq += 1
            if wait is not None:
                scheduled = time + wait
                if scheduled == time and kind == _ARRIVAL:
                    # Zero effective wait scheduled while an ARRIVAL is being
                    # processed: the kind-1 slot of this timestamp has already
                    # passed, so the event pops right behind this arrival and
                    # its load-log entries are keyed by the arrival's kind
                    # (see on_dormancy).
                    ue.late_dormancy_seq = ue.dormancy_seq
                nonlocal serial, real_events
                serial += 1
                real_events += 1
                heappush(heap, (scheduled, _DORMANCY, ue.ue_id, serial,
                                ue.dormancy_seq))

        def release_buffer(ue: UeContext, time: float) -> None:
            """Promote once and emit every buffered packet at ``time``."""
            for buffered in ue.buffered_packets:
                emit(ue, buffered, time)
            for pending in ue.buffered_arrivals:
                ue.delayed_sessions += 1
                ue.total_delay_s += time - pending.arrival_time
                if (ue.collect
                        or len(ue.session_delays) < _SESSION_DELAY_SAMPLE_CAP):
                    ue.session_delays.append(
                        SessionDelay(pending.arrival_time, time, pending.flow_id)
                    )
            if ue.buffered_arrivals:
                ue.policy.on_release(
                    time, [d.arrival_time for d in ue.buffered_arrivals]
                )
            ask_dormancy(ue, time)
            ue.buffering = False
            ue.buffered_packets = []
            ue.buffered_arrivals = []
            ue.buffered_flows = set()

        def on_arrival(ue: UeContext, packet: Packet) -> None:
            now = packet.timestamp
            # A packet arriving strictly before a scheduled demotion cancels
            # it; one scheduled at exactly ``now`` already fired (heap order).
            ue.dormancy_seq += 1

            previous_activity = ue.last_flow_activity.get(packet.flow_id)
            is_session_start = (
                previous_activity is None
                or now - previous_activity > session_idle_gap
            )
            ue.last_flow_activity[packet.flow_id] = now
            if len(ue.last_flow_activity) >= ue.flow_prune_at:
                # Entries older than the idle gap classify exactly like
                # absent ones (strict '>' above), so dropping them changes
                # nothing; doubling the threshold keeps this amortised O(1).
                stale = now - session_idle_gap
                for flow_id in [f for f, t in ue.last_flow_activity.items()
                                if t < stale]:
                    del ue.last_flow_activity[flow_id]
                ue.flow_prune_at = max(
                    _FLOW_TABLE_PRUNE_SIZE, 2 * len(ue.last_flow_activity)
                )

            if ue.buffering:
                if is_session_start or packet.flow_id in ue.buffered_flows:
                    # Either a further new session joining the batch, or a
                    # later packet of a session that is already being held.
                    ue.buffered_packets.append(packet)
                    if is_session_start:
                        ue.buffered_arrivals.append(
                            SessionDelay(now, ue.release_time, packet.flow_id)
                        )
                    ue.buffered_flows.add(packet.flow_id)
                    return
                # A packet of an ongoing, *unbuffered* session must not be
                # delayed: release right away and let it go through normally.
                ue.release_seq += 1  # invalidate the scheduled release event
                release_buffer(ue, now)
            elif not (ue.delays_activation or ue.collect):
                # The policy never delays a promotion (base-class
                # activation_delay) and nothing records zero-delay session
                # starts: the Idle-state peek below would be a no-op.
                pass
            elif ue.machine.state_at(now) is RadioState.IDLE and is_session_start:
                delay = (
                    ue.policy.activation_delay(now)
                    if ue.delays_activation else 0.0
                )
                if delay < 0:
                    raise ValueError(
                        f"policy {ue.policy.name!r} returned a negative "
                        "activation delay"
                    )
                if delay > 0:
                    ue.buffering = True
                    ue.release_time = now + delay
                    ue.buffered_packets = [packet]
                    ue.buffered_arrivals = [
                        SessionDelay(now, ue.release_time, packet.flow_id)
                    ]
                    ue.buffered_flows = {packet.flow_id}
                    ue.dormancy_seq += 1  # buffering clears any pending demotion
                    ue.release_seq += 1
                    push(ue.release_time, _RELEASE, ue.ue_id, ue.release_seq)
                    return
                if ue.collect:
                    ue.session_delays.append(SessionDelay(now, now, packet.flow_id))

            emit(ue, packet, now)
            ask_dormancy(ue, now)

        def on_dormancy(ue: UeContext, time: float, seq: int) -> None:
            if seq != ue.dormancy_seq or ue.buffering:
                return  # cancelled by a later packet or superseded
            if cell_mode:
                ue.dormancy_requests += 1
                if station_always_grants or station.decide(ue.ue_id, time,
                                                           load):
                    ue.dormancy_granted += 1
                else:
                    ue.dormancy_denied += 1
                    return
            log_kind = _ARRIVAL if seq == ue.late_dormancy_seq else _DORMANCY
            if ue.machine.request_fast_dormancy(time) and cell_mode:
                load.note_switch(time)
                if load_log is not None:
                    load_log.append((time, log_kind, ue.ue_id, "switch"))
            if cell_mode:
                sync_load(ue, log_kind)

        def on_handover(ue: UeContext, time: float) -> None:
            """Close ``ue``'s timeline at its departure instant.

            The order matters: a MakeActive buffer still held at departure
            is force-released *at* the handover time (its sessions are
            emitted, delayed and charged to this cell), then every pending
            dormancy — including the one the release just scheduled — is
            cancelled, and the machine is closed with the same
            :meth:`RrcStateMachine.finish` call a run end would use, so the
            pending timer demotions are applied with the exact float
            arithmetic of the shard-merge close-out replay.
            """
            if ue.buffering:
                ue.release_seq += 1  # invalidate the scheduled release event
                release_buffer(ue, time)
            ue.dormancy_seq += 1
            ue.timer_pending = False
            ue.departed = True
            ue.machine.finish(time)
            if cell_mode:
                # The UE leaves this cell's live population whatever state
                # it closed in; stale queued TIMER events are skipped by
                # the departed guard instead of re-syncing the load.
                if ue.was_active:
                    load.deactivate()
                    ue.was_active = False
                    if load_log is not None:
                        load_log.append((time, _HANDOVER, ue.ue_id, "deact"))

        def on_timer(ue: UeContext, time: float) -> None:
            if ue.departed:
                return  # stale expiry queued before the UE left the cell
            target = ue.timer_target
            if time < target:
                # Activity moved the deadline since this event was queued:
                # defer to the current deadline (one queued event per UE).
                nonlocal serial, real_events
                serial += 1
                real_events += 1
                heappush(heap, (target, _TIMER, ue.ue_id, serial, 0))
                return
            ue.timer_pending = False
            ue.machine.advance_to(time)
            sync_load(ue, _TIMER)

        # Prime one arrival per UE, the scheduled departures, and
        # (optionally) the first load sample.
        for ue_id, source in streams.items():
            sources[ue_id] = _ArrivalSource(source)
            pull_arrival(ue_id, 0.0)
        if handovers:
            for ue_id, depart_at in handovers.items():
                push(depart_at, _HANDOVER, ue_id, None)
        if sample_interval_s is not None and heap:
            push(sample_interval_s, _SAMPLE, -1, None)

        heappop = heapq.heappop
        last_real: float | None = None  # newest non-SAMPLE pop time
        try:
            while heap:
                time, kind, ue_id, _, payload = heappop(heap)
                if kind != _SAMPLE:
                    last_real = time
                if kind == _ARRIVAL:
                    real_events -= 1
                    on_arrival(contexts[ue_id], payload)
                    # Inline fast path of pull_arrival: next packet of the
                    # current block by plain list indexing.
                    src = sources[ue_id]
                    idx = src.idx
                    if idx < src.n:
                        packet = src.buf[idx]
                        src.idx = idx + 1
                        timestamp = packet.timestamp
                        if timestamp < time:
                            raise StreamOrderError(
                                f"packet stream for UE {ue_id} is not "
                                f"time-ordered: {timestamp} after {time}"
                            )
                        serial += 1
                        real_events += 1
                        heappush(heap, (timestamp, _ARRIVAL, ue_id, serial,
                                        packet))
                    else:
                        pull_arrival(ue_id, time)
                elif kind == _TIMER:
                    real_events -= 1
                    on_timer(contexts[ue_id], time)
                elif kind == _DORMANCY:
                    real_events -= 1
                    on_dormancy(contexts[ue_id], time, payload)
                elif kind == _RELEASE:
                    real_events -= 1
                    ue = contexts[ue_id]
                    if payload == ue.release_seq:
                        release_buffer(ue, time)
                elif kind == _HANDOVER:
                    real_events -= 1
                    on_handover(contexts[ue_id], time)
                else:  # SAMPLE
                    samples.append(
                        LoadSample(
                            time=time,
                            active_devices=load.active_devices if load else 0,
                            switches_last_minute=(
                                load.switches_within_window(time) if load else 0
                            ),
                        )
                    )
                    if real_events > 0 and sample_interval_s is not None:
                        push(time + sample_interval_s, _SAMPLE, -1, None)
        except Exception:
            # Abort atomically: no KernelResult is produced and every
            # context is poisoned, so a mis-ordered (or otherwise failing)
            # stream can never leak a partial timeline into a result or a
            # shard merge.
            for ue in contexts.values():
                ue.mark_aborted()
            raise

        last_emitted = max(
            (ue.last_effective for ue in contexts.values()
             if ue.last_effective is not None),
            default=None,
        )
        max_now = max(
            (ue.machine.now for ue in contexts.values()), default=0.0
        )
        open_result = KernelResult(
            contexts=contexts,
            end_time=max_now,
            load=load,
            samples=tuple(samples),
            last_emitted=last_emitted,
            finished=False,
            last_event_time=last_real,
        )
        if not finish:
            return open_result
        return self.finalize(
            open_result,
            resolve_end_time(last_emitted, max_now, self._trailing_time),
        )

    def finalize(self, result: KernelResult, end_time: float) -> KernelResult:
        """Close every timeline of an unfinished run at ``end_time``.

        Charges the trailing tail after the last emitted packet (a run
        that never emitted anything has no tail) and folds the final open
        interval of each streaming context.  ``end_time`` must come from
        :func:`resolve_end_time` over this run's observations — or over
        the *global* observations of every shard of a sharded cell, which
        is what makes shard runs byte-identical to the single-process run.
        """
        if result.finished:
            raise ValueError("kernel result is already finished")
        cell_mode = result.load is not None
        for ue in result.contexts.values():
            if ue.departed:
                # Closed at its handover instant; its timeline ends there.
                continue
            ue.machine.finish(end_time)
            if cell_mode:
                active = ue.machine.state is not RadioState.IDLE
                if active and not ue.was_active:
                    result.load.activate()
                elif not active and ue.was_active:
                    result.load.deactivate()
                ue.was_active = active
        return replace(result, end_time=end_time, finished=True)  # repro-lint: allow[hot-path-slots] reason=once-per-run close-out, not a per-packet path
