"""Trace-driven simulation: the simulator, its results, and power profiles."""

from .power_trace import PowerSample, PowerTrace, build_power_trace
from .results import GapDecision, SessionDelay, SimulationResult
from .simulator import TraceSimulator

__all__ = [
    "GapDecision",
    "PowerSample",
    "PowerTrace",
    "SessionDelay",
    "SimulationResult",
    "TraceSimulator",
    "build_power_trace",
]
