"""Trace-driven simulation: the event kernel, façades, results, power profiles."""

from .engine import (
    CellLoad,
    DormancyStation,
    EventKind,
    KernelResult,
    LoadSample,
    SimulationEngine,
    StreamOrderError,
    UeContext,
)
from .power_trace import PowerSample, PowerTrace, build_power_trace
from .results import GapDecision, SessionDelay, SimulationResult
from .simulator import TraceSimulator

__all__ = [
    "CellLoad",
    "DormancyStation",
    "EventKind",
    "GapDecision",
    "KernelResult",
    "LoadSample",
    "PowerSample",
    "PowerTrace",
    "SessionDelay",
    "SimulationEngine",
    "SimulationResult",
    "StreamOrderError",
    "TraceSimulator",
    "UeContext",
    "build_power_trace",
]
