"""Trace-driven RRC simulator (single-UE façade over the event kernel).

The simulator replays a packet trace against an
:class:`~repro.rrc.state_machine.RrcStateMachine` under the control of a
:class:`~repro.core.policy.RadioPolicy`, producing the radio timeline,
switch events, effective (possibly MakeActive-delayed) packet times, energy
breakdown, per-gap demotion decisions and per-session delays that the
evaluation metrics consume.  This mirrors the paper's methodology: all
results in Section 6 come from trace-driven simulation over collected
packet traces with the measured carrier constants.

Since the kernel refactor, :class:`TraceSimulator` is a thin façade over
:class:`~repro.sim.engine.SimulationEngine` — the same heap-based event
kernel that powers the multi-device
:class:`~repro.basestation.cell.CellSimulator` — so the replay semantics
below are implemented exactly once.

Semantics
---------

* **Demotion (MakeIdle side).** After every transferred packet the policy is
  asked for a waiting time; if no further packet arrives within that wait, a
  fast-dormancy request is issued at ``packet_time + wait``.  A ``None``
  answer leaves demotion to the carrier's inactivity timers, which the state
  machine applies automatically.
* **Promotion delaying (MakeActive side).** When a packet arrives for an
  Idle radio and it starts a new session (its flow has been quiet for at
  least the carrier's ``t1 + t2``), the policy may return a positive delay.
  The session — and every further session starting within the window — is
  buffered and released together at the end of the window; buffered packets
  are emitted at the release time.  A packet belonging to an *ongoing*
  session (e.g. one whose radio was demoted mid-transfer) is never delayed:
  it forces an immediate release.  Packets of a delayed session that
  originally fall after the release time keep their own timestamps, so a
  delayed session is compressed toward its release rather than shifted as a
  rigid block; the difference only affects intra-burst spacing, which the
  per-second energy model is insensitive to (documented in
  ``docs/DESIGN.md``).
* **Trailing tail.** After the last packet the simulation keeps running for
  ``t1 + t2`` plus one second so that the final tail (which the status quo
  pays and the proposed schemes mostly avoid) is charged fairly.

Tie-breaks and degenerate inputs
--------------------------------

(See ``docs/DESIGN.md`` for the rationale behind each rule.)

* A fast-dormancy demotion scheduled at *exactly* a packet's arrival time
  fires **strictly before** the packet is processed: the demotion was
  scheduled first (the policy's wait elapsed), so the radio demotes to Idle
  at that instant and the packet immediately promotes it again, paying the
  promotion cost.  Only a packet arriving *strictly before* the scheduled
  time cancels the demotion.
* An **empty trace** produces a well-defined zero run: a zero-duration
  timeline, no switches, no energy.  No trailing tail is charged, because a
  radio that never left Idle has no tail to pay.
"""

from __future__ import annotations

from ..core.policy import RadioPolicy
from ..energy.accounting import DataEnergyModel
from ..rrc.profiles import CarrierProfile
from ..rrc.state_machine import SwitchEvent
from ..rrc.states import RadioState
from ..traces.packet import PacketTrace
from .engine import SimulationEngine
from .results import GapDecision, SimulationResult

__all__ = ["TraceSimulator"]


class TraceSimulator:
    """Replays packet traces against the RRC machine under a control policy.

    Parameters
    ----------
    profile:
        Carrier profile providing timers, powers and switch costs.
    data_model:
        Optional custom :class:`~repro.energy.accounting.DataEnergyModel`;
        by default one is built from the profile.
    session_idle_gap:
        Quiet time after which a flow's next packet counts as a *new
        session* (and is therefore eligible for MakeActive delaying).
        Defaults to the carrier's ``t1 + t2``.
    trailing_time:
        Extra simulated time after the last packet so the final tail is
        accounted; defaults to ``t1 + t2 + 1`` seconds.
    """

    def __init__(
        self,
        profile: CarrierProfile,
        data_model: DataEnergyModel | None = None,
        session_idle_gap: float | None = None,
        trailing_time: float | None = None,
    ) -> None:
        self._engine = SimulationEngine(
            profile,
            data_model=data_model,
            session_idle_gap=session_idle_gap,
            trailing_time=trailing_time,
        )

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile this simulator uses."""
        return self._engine.profile

    @property
    def engine(self) -> SimulationEngine:
        """The shared event kernel this façade drives."""
        return self._engine

    def run(self, trace: PacketTrace, policy: RadioPolicy) -> SimulationResult:
        """Simulate ``trace`` under ``policy`` and return the run's results."""
        policy.prepare(trace, self._engine.profile)
        policy.reset()
        return self._engine.run_single(trace, policy)


def _gap_decisions(
    effective_trace: PacketTrace, switches: tuple[SwitchEvent, ...] | list[SwitchEvent]
) -> list[GapDecision]:
    """Per inter-packet gap, whether the radio was demoted to Idle inside it."""
    demotion_times = sorted(
        s.time for s in switches if s.is_demotion and s.to_state is RadioState.IDLE
    )
    decisions: list[GapDecision] = []
    timestamps = effective_trace.timestamps
    cursor = 0
    for start, end in zip(timestamps, timestamps[1:]):
        while cursor < len(demotion_times) and demotion_times[cursor] < start:
            cursor += 1
        switched = cursor < len(demotion_times) and demotion_times[cursor] < end
        decisions.append(GapDecision(time=start, gap=end - start, switched=switched))
    return decisions
