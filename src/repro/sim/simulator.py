"""Trace-driven RRC simulator.

The simulator replays a packet trace against an
:class:`~repro.rrc.state_machine.RrcStateMachine` under the control of a
:class:`~repro.core.policy.RadioPolicy`, producing the radio timeline,
switch events, effective (possibly MakeActive-delayed) packet times, energy
breakdown, per-gap demotion decisions and per-session delays that the
evaluation metrics consume.  This mirrors the paper's methodology: all
results in Section 6 come from trace-driven simulation over collected
packet traces with the measured carrier constants.

Semantics
---------

* **Demotion (MakeIdle side).** After every transferred packet the policy is
  asked for a waiting time; if no further packet arrives within that wait, a
  fast-dormancy request is issued at ``packet_time + wait``.  A ``None``
  answer leaves demotion to the carrier's inactivity timers, which the state
  machine applies automatically.
* **Promotion delaying (MakeActive side).** When a packet arrives for an
  Idle radio and it starts a new session (its flow has been quiet for at
  least the carrier's ``t1 + t2``), the policy may return a positive delay.
  The session — and every further session starting within the window — is
  buffered and released together at the end of the window; buffered packets
  are emitted at the release time.  A packet belonging to an *ongoing*
  session (e.g. one whose radio was demoted mid-transfer) is never delayed:
  it forces an immediate release.  Packets of a delayed session that
  originally fall after the release time keep their own timestamps, so a
  delayed session is compressed toward its release rather than shifted as a
  rigid block; the difference only affects intra-burst spacing, which the
  per-second energy model is insensitive to (documented in DESIGN.md).
* **Trailing tail.** After the last packet the simulation keeps running for
  ``t1 + t2`` plus one second so that the final tail (which the status quo
  pays and the proposed schemes mostly avoid) is charged fairly.

Tie-breaks and degenerate inputs
--------------------------------

* A fast-dormancy demotion scheduled at *exactly* a packet's arrival time
  fires **strictly before** the packet is processed: the demotion was
  scheduled first (the policy's wait elapsed), so the radio demotes to Idle
  at that instant and the packet immediately promotes it again, paying the
  promotion cost.  Only a packet arriving *strictly before* the scheduled
  time cancels the demotion.
* An **empty trace** produces a well-defined zero run: a zero-duration
  timeline, no switches, no energy.  No trailing tail is charged, because a
  radio that never left Idle has no tail to pay.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.policy import RadioPolicy
from ..energy.accounting import DataEnergyModel, EnergyAccountant
from ..rrc.profiles import CarrierProfile
from ..rrc.state_machine import RrcStateMachine, SwitchEvent
from ..rrc.states import RadioState
from ..traces.packet import Packet, PacketTrace
from .results import GapDecision, SessionDelay, SimulationResult

__all__ = ["TraceSimulator"]


class TraceSimulator:
    """Replays packet traces against the RRC machine under a control policy.

    Parameters
    ----------
    profile:
        Carrier profile providing timers, powers and switch costs.
    data_model:
        Optional custom :class:`~repro.energy.accounting.DataEnergyModel`;
        by default one is built from the profile.
    session_idle_gap:
        Quiet time after which a flow's next packet counts as a *new
        session* (and is therefore eligible for MakeActive delaying).
        Defaults to the carrier's ``t1 + t2``.
    trailing_time:
        Extra simulated time after the last packet so the final tail is
        accounted; defaults to ``t1 + t2 + 1`` seconds.
    """

    def __init__(
        self,
        profile: CarrierProfile,
        data_model: DataEnergyModel | None = None,
        session_idle_gap: float | None = None,
        trailing_time: float | None = None,
    ) -> None:
        self._profile = profile
        self._accountant = EnergyAccountant(profile, data_model)
        self._session_idle_gap = (
            session_idle_gap
            if session_idle_gap is not None
            else profile.total_inactivity_timeout
        )
        self._trailing_time = (
            trailing_time
            if trailing_time is not None
            else profile.total_inactivity_timeout + 1.0
        )
        if self._session_idle_gap < 0:
            raise ValueError("session_idle_gap must be non-negative")
        if self._trailing_time < 0:
            raise ValueError("trailing_time must be non-negative")

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile this simulator uses."""
        return self._profile

    def run(self, trace: PacketTrace, policy: RadioPolicy) -> SimulationResult:
        """Simulate ``trace`` under ``policy`` and return the run's results."""
        policy.prepare(trace, self._profile)
        policy.reset()

        if not trace:
            # A never-promoted radio has no tail: close the timeline at t=0
            # rather than charging trailing time from an Idle machine.
            machine = RrcStateMachine(self._profile, start_time=0.0)
            machine.finish(0.0)
            empty = PacketTrace((), name=trace.name)
            return SimulationResult(
                policy_name=policy.name,
                profile_key=self._profile.key,
                trace_name=trace.name,
                breakdown=self._accountant.account(
                    empty, machine.intervals, machine.switches
                ),
                intervals=tuple(machine.intervals),
                switches=(),
                effective_trace=empty,
                gap_decisions=(),
                session_delays=(),
            )

        machine = RrcStateMachine(self._profile, start_time=0.0)
        effective_packets: list[Packet] = []
        session_delays: list[SessionDelay] = []
        last_flow_activity: dict[int, float] = {}

        pending_dormancy: float | None = None
        buffering = False
        release_time = 0.0
        buffered_packets: list[Packet] = []
        buffered_arrivals: list[SessionDelay] = []
        buffered_flows: set[int] = set()

        def emit(packet: Packet, time: float) -> None:
            """Transfer one packet at effective time ``time``."""
            nonlocal pending_dormancy
            machine.notify_activity(time)
            effective = packet if packet.timestamp == time else replace(
                packet, timestamp=time
            )
            effective_packets.append(effective)
            policy.observe_packet(time, effective)

        def ask_dormancy(time: float) -> None:
            """Ask the policy for a demotion wait after activity at ``time``."""
            nonlocal pending_dormancy
            wait = policy.dormancy_wait(time)
            pending_dormancy = time + wait if wait is not None else None

        def release_buffer(time: float) -> None:
            """Promote once and emit every buffered packet at ``time``."""
            nonlocal buffering, buffered_packets, buffered_arrivals, buffered_flows
            for buffered in buffered_packets:
                emit(buffered, time)
            for pending in buffered_arrivals:
                session_delays.append(
                    SessionDelay(pending.arrival_time, time, pending.flow_id)
                )
            if buffered_arrivals:
                policy.on_release(
                    time, [d.arrival_time for d in buffered_arrivals]
                )
            ask_dormancy(time)
            buffering = False
            buffered_packets = []
            buffered_arrivals = []
            buffered_flows = set()

        for packet in trace:
            now = packet.timestamp

            # 1. A scheduled buffer release that falls before this packet.
            if buffering and now >= release_time:
                release_buffer(release_time)

            # 2. A scheduled fast-dormancy demotion that fires at or before this
            #    packet.  Ties go to the demotion: it was scheduled first, so it
            #    fires strictly before the packet is processed and the packet
            #    then promotes the freshly idled radio (see module docstring).
            if not buffering and pending_dormancy is not None:
                if pending_dormancy <= now:
                    machine.request_fast_dormancy(pending_dormancy)
                    pending_dormancy = None
                else:
                    # The packet arrived before the wait elapsed: cancel.
                    pending_dormancy = None

            previous_activity = last_flow_activity.get(packet.flow_id)
            is_session_start = (
                previous_activity is None
                or now - previous_activity > self._session_idle_gap
            )
            last_flow_activity[packet.flow_id] = now

            if buffering:
                if is_session_start or packet.flow_id in buffered_flows:
                    # Either a further new session joining the batch, or a
                    # later packet of a session that is already being held.
                    buffered_packets.append(packet)
                    if is_session_start:
                        buffered_arrivals.append(
                            SessionDelay(now, release_time, packet.flow_id)
                        )
                    buffered_flows.add(packet.flow_id)
                    continue
                # A packet of an ongoing, *unbuffered* session must not be
                # delayed: release right away and let it go through normally.
                release_buffer(now)
            elif machine.state_at(now) is RadioState.IDLE and is_session_start:
                delay = policy.activation_delay(now)
                if delay < 0:
                    raise ValueError(
                        f"policy {policy.name!r} returned a negative activation delay"
                    )
                if delay > 0:
                    buffering = True
                    release_time = now + delay
                    buffered_packets = [packet]
                    buffered_arrivals = [SessionDelay(now, release_time, packet.flow_id)]
                    buffered_flows = {packet.flow_id}
                    pending_dormancy = None
                    continue
                session_delays.append(SessionDelay(now, now, packet.flow_id))

            emit(packet, now)
            ask_dormancy(now)

        # Drain any remaining buffered sessions and pending demotion.
        if buffering:
            release_buffer(release_time)
        if pending_dormancy is not None:
            machine.request_fast_dormancy(pending_dormancy)
            pending_dormancy = None

        last_time = effective_packets[-1].timestamp if effective_packets else 0.0
        end_time = max(last_time + self._trailing_time, machine.now)
        machine.finish(end_time)

        effective_trace = PacketTrace(effective_packets, name=trace.name)
        breakdown = self._accountant.account(
            effective_trace, machine.intervals, machine.switches
        )
        gap_decisions = _gap_decisions(effective_trace, machine.switches)

        return SimulationResult(
            policy_name=policy.name,
            profile_key=self._profile.key,
            trace_name=trace.name,
            breakdown=breakdown,
            intervals=tuple(machine.intervals),
            switches=tuple(machine.switches),
            effective_trace=effective_trace,
            gap_decisions=tuple(gap_decisions),
            session_delays=tuple(session_delays),
        )


def _gap_decisions(
    effective_trace: PacketTrace, switches: tuple[SwitchEvent, ...] | list[SwitchEvent]
) -> list[GapDecision]:
    """Per inter-packet gap, whether the radio was demoted to Idle inside it."""
    demotion_times = sorted(
        s.time for s in switches if s.is_demotion and s.to_state is RadioState.IDLE
    )
    decisions: list[GapDecision] = []
    timestamps = effective_trace.timestamps
    cursor = 0
    for start, end in zip(timestamps, timestamps[1:]):
        while cursor < len(demotion_times) and demotion_times[cursor] < start:
            cursor += 1
        switched = cursor < len(demotion_times) and demotion_times[cursor] < end
        decisions.append(GapDecision(time=start, gap=end - start, switched=switched))
    return decisions
