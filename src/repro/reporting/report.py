"""Markdown report generators (the machinery behind EXPERIMENTS.md).

Two levels are provided:

* :func:`headline_report` — a compact paper-vs-measured table for the
  abstract's headline numbers, built from the output of
  :func:`repro.analysis.experiments.headline_savings` and
  :func:`repro.analysis.experiments.carrier_comparison`;
* :func:`experiments_report` — a full markdown document with one section per
  reproduced table/figure, given pre-computed measurement dictionaries (the
  benchmark harness produces these; the CLI's ``report`` command wires the
  two together).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .claims import PAPER_CLAIMS, ClaimCheck, check_claims
from .render import format_markdown_table

__all__ = ["headline_report", "experiments_report"]


def _claim_rows(checks: Sequence[ClaimCheck]) -> list[list[object]]:
    rows: list[list[object]] = []
    for check in checks:
        claim = check.claim
        rows.append(
            [
                claim.key,
                claim.description,
                f"{claim.paper_value:g} {claim.unit}",
                f"{check.measured:.2f} {claim.unit}",
                "yes" if check.passed else "NO",
            ]
        )
    return rows


def headline_report(measured: Mapping[str, float]) -> str:
    """Markdown table comparing measured headline numbers with the paper's.

    ``measured`` maps claim keys (see
    :data:`repro.reporting.claims.PAPER_CLAIMS`) to measured values.
    """
    checks = check_claims(measured)
    table = format_markdown_table(
        ["claim", "description", "paper", "measured", "within band"],
        _claim_rows(checks),
    )
    passed = sum(1 for c in checks if c.passed)
    summary = f"{passed}/{len(checks)} headline claims reproduced within their bands."
    return f"{table}\n\n{summary}\n"


def experiments_report(
    sections: Sequence[tuple[str, str]],
    measured: Mapping[str, float] | None = None,
    title: str = "Experiment reproduction record",
) -> str:
    """Assemble a full markdown report.

    ``sections`` is a list of ``(heading, markdown_body)`` pairs, one per
    reproduced table or figure; when ``measured`` is given a headline
    paper-vs-measured section is prepended.
    """
    parts: list[str] = [f"# {title}", ""]
    if measured:
        parts.extend(["## Headline claims", "", headline_report(measured), ""])
    for heading, body in sections:
        parts.extend([f"## {heading}", "", body.rstrip(), ""])
    return "\n".join(parts).rstrip() + "\n"
