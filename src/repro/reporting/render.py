"""Low-level renderers: markdown tables, CSV export, number formatting."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "format_percent",
    "format_seconds",
    "format_markdown_table",
    "csv_rows",
    "write_csv",
]


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a fraction-of-one or percent value as a percent string.

    Values with magnitude <= 1.5 are treated as fractions (0.66 → "66.0%"),
    larger values as already-scaled percentages (66.0 → "66.0%"), which is
    how the analysis layer reports them.
    """
    percent = value * 100.0 if abs(value) <= 1.5 else value
    return f"{percent:.{decimals}f}%"


def format_seconds(value: float, decimals: int = 2) -> str:
    """Format a duration in seconds with a trailing unit."""
    return f"{value:.{decimals}f}s"


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """Render a GitHub-flavoured markdown table.

    Cells are converted with ``str``; floats are shown with three significant
    decimals to keep the table readable.
    """
    if not headers:
        raise ValueError("headers must not be empty")
    width = len(headers)
    for row in rows:
        if len(row) != width:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {width}"
            )

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
        return str(value)

    lines = [
        "| " + " | ".join(cell(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(value) for value in row) + " |")
    return "\n".join(lines)


def csv_rows(
    records: Sequence[Mapping[str, Any]], fieldnames: Sequence[str] | None = None
) -> str:
    """Render a list of dictionaries as CSV text.

    ``fieldnames`` defaults to the keys of the first record (in order);
    records missing a field emit an empty cell, extra fields are an error —
    silently dropping data from a results file is worse than failing.
    """
    if not records:
        return ""
    names = list(fieldnames) if fieldnames is not None else list(records[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=names)
    writer.writeheader()
    for record in records:
        extras = set(record) - set(names)
        if extras:
            raise ValueError(
                f"record has fields {sorted(extras)} not listed in {names}"
            )
        writer.writerow({name: record.get(name, "") for name in names})
    return buffer.getvalue()


def write_csv(
    records: Sequence[Mapping[str, Any]],
    path: str | Path,
    fieldnames: Sequence[str] | None = None,
) -> int:
    """Write records to a CSV file; returns the number of data rows written."""
    text = csv_rows(records, fieldnames)
    Path(path).write_text(text, encoding="utf-8")
    return len(records)
