"""Canonical golden-record builders for the regression suite.

A *golden record* pins one canonical simulation down to the last float:
the builders here rerun a small, fixed grid of single-UE and cell-scale
simulations and flatten every number that matters — per-run energy
breakdowns, switch counts, delays, per-device and per-cohort cell records
— into a deterministic, JSON-able payload.  ``tools/refresh_golden.py``
writes those payloads to ``tests/golden/*.json`` and
``tests/integration/test_golden.py`` re-derives them on every run and
compares the rendered JSON **byte for byte**, so any change that moves a
seed-equivalent result — an accidental float reordering, a changed seed
derivation, a refactor that silently drifts the kernel — fails loudly
instead of shipping.

Keeping the builders in the library (rather than in the test) means the
refresh tool and the test cannot disagree about what "the canonical runs"
are.  Floats are serialised through :func:`json.dumps`, whose ``repr``-
based float formatting is shortest-round-trip exact in Python 3 — byte
equality of the rendered text is float equality of every value.

The grids are deliberately small (seconds of runtime) but cross every
layer: two applications × two carriers × four schemes for the single-UE
suite; homogeneous cells under two dormancy policies; scenario cells
(heterogeneous cohorts, diurnal shaping, mixed policies) for the scenario
suite; and small metros (shuffle and commuter mobility) pinning the
handover layer.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable

__all__ = [
    "GOLDEN_BUILDERS",
    "build_golden",
    "render_golden",
]

#: The fixed single-UE grid: small enough to run in seconds, wide enough
#: to cross both RRC machine shapes (3-state HSPA, 2-state LTE), the
#: baseline, a fixed timer, MakeIdle and the MakeIdle+MakeActive combo.
_SINGLE_APPS = ("email", "im")
_SINGLE_CARRIERS = ("att_hspa", "verizon_lte")
_SINGLE_SCHEMES = (
    "status_quo",
    "fixed_4.5s",
    "makeidle",
    "makeidle+makeactive_learn",
)
_SINGLE_DURATION_S = 600.0
_SINGLE_SEED = 0

_CELL_DEVICES = 8
_CELL_DURATION_S = 400.0
_SCENARIO_DEVICES = 9


def _single_ue_records() -> list[dict[str, Any]]:
    """The canonical single-UE grid, flattened."""
    from ..api.spec import PolicySpec, RunSpec, TraceSpec, execute

    records: list[dict[str, Any]] = []
    for app in _SINGLE_APPS:
        for carrier in _SINGLE_CARRIERS:
            for scheme in _SINGLE_SCHEMES:
                spec = RunSpec(
                    trace=TraceSpec(kind="application", name=app,
                                    duration_s=_SINGLE_DURATION_S,
                                    seed=_SINGLE_SEED),
                    carrier=carrier,
                    policy=PolicySpec(scheme=scheme).resolved(100),
                )
                result = execute(spec)
                records.append({
                    "trace": app,
                    "carrier": carrier,
                    "scheme": scheme,
                    "breakdown": result.breakdown.as_dict(),
                    "switch_count": result.switch_count,
                    "promotion_count": result.promotion_count,
                    "effective_packets": len(result.effective_trace),
                    "delayed_sessions": len(result.delays),
                    "mean_delay_s": result.mean_delay,
                    "median_delay_s": result.median_delay,
                })
    return records


def _device_record(device) -> dict[str, Any]:
    """Flatten one cell device's result."""
    record = {
        "device_id": device.device_id,
        "policy": device.policy_name,
        "breakdown": device.breakdown.as_dict(),
        "packets": device.packets,
        "dormancy_requests": device.dormancy_requests,
        "dormancy_granted": device.dormancy_granted,
        "dormancy_denied": device.dormancy_denied,
        "delayed_sessions": device.delayed_sessions,
        "total_session_delay_s": device.total_session_delay_s,
    }
    if device.cohort:
        record["cohort"] = device.cohort
    return record


def _cell_record(spec) -> dict[str, Any]:
    """Run one cell spec and flatten its aggregate + per-device results."""
    from ..api.cells import execute_cell

    result = execute_cell(spec)
    record = {
        "cell": spec.cell.label,
        "carrier": spec.carrier,
        "scheme": spec.policy.scheme,
        "dormancy": spec.dormancy.label,
        "duration_s": result.duration_s,
        "total_energy_j": result.total_energy_j,
        "total_switches": result.total_switches,
        "rrc_messages": result.signaling.messages,
        "dormancy_requests": result.dormancy_requests,
        "dormancy_denied": result.dormancy_denied,
        "peak_active_devices": result.peak_active_devices,
        "peak_switches_per_minute": result.peak_switches_per_minute,
        "devices": [_device_record(device) for device in result.devices],
    }
    cohorts = result.cohorts()
    if cohorts:
        record["cohorts"] = {
            label: breakdown.as_dict()
            for label, breakdown in result.cohort_breakdown().items()
        }
    return record


def _small_cell_records(engine: str = "scalar") -> list[dict[str, Any]]:
    """Canonical homogeneous cells: two schemes × two dormancy policies."""
    from ..api.cells import CellRunSpec, DormancySpec, cell

    population = cell(
        devices=_CELL_DEVICES, apps=("im", "email", "news"),
        duration=_CELL_DURATION_S, engine=engine,
    )
    from ..api.spec import PolicySpec

    records = []
    for scheme in ("status_quo", "makeidle"):
        for dormancy in (DormancySpec(), DormancySpec("rate_limited", 10.0)):
            records.append(_cell_record(CellRunSpec(
                cell=population,
                carrier="att_hspa",
                policy=PolicySpec(scheme=scheme).resolved(100),
                dormancy=dormancy,
            )))
    return records


def _scenario_cell_records(engine: str = "scalar") -> list[dict[str, Any]]:
    """Canonical scenario cells: shaped heterogeneous + mixed-policy runs."""
    from ..api.cells import CellRunSpec, DormancySpec, cell
    from ..api.spec import PolicySpec

    records = []
    for scenario in ("office_day", "mixed_policy"):
        for scheme in ("status_quo", "makeidle"):
            records.append(_cell_record(CellRunSpec(
                cell=cell(devices=_SCENARIO_DEVICES, scenario=scenario,
                          duration=_CELL_DURATION_S, engine=engine),
                carrier="att_hspa",
                policy=PolicySpec(scheme=scheme).resolved(100),
                dormancy=DormancySpec(),
            )))
    return records


_HOT_PATH_DEVICES = 1000
_HOT_PATH_SCENARIO_DEVICES = 300
_HOT_PATH_DURATION_S = 120.0
_HOT_PATH_CHUNK_S = 60.0


def _hex(value: float) -> str:
    """Exact (lossless) float serialisation for digest material."""
    return float(value).hex()


def _hot_path_records(engine: str = "scalar") -> list[dict[str, Any]]:
    """Digest-pinned kernel-scale cells: 1k homogeneous + scenario.

    These are the throughput-benchmark shapes (streamed 1k-device cell,
    chunked generation) at a scale where full per-device JSON would be
    megabytes.  Every per-device record is folded into one sha256 digest
    over a canonical ``float.hex`` serialisation instead — ``float.hex``
    is lossless, so digest equality is float equality of every per-device
    value, and the hot-path kernel rewrite is held byte-identical at the
    scale it is benchmarked at.
    """
    from ..api.cells import CellRunSpec, DormancySpec, cell, execute_cell
    from ..api.spec import PolicySpec

    grid = (
        (
            "streamed_1k",
            cell(devices=_HOT_PATH_DEVICES, apps=("im", "email"),
                 duration=_HOT_PATH_DURATION_S, streaming=True,
                 chunk_s=_HOT_PATH_CHUNK_S, engine=engine),
        ),
        (
            "scenario_office_day",
            cell(devices=_HOT_PATH_SCENARIO_DEVICES, scenario="office_day",
                 duration=_HOT_PATH_DURATION_S, chunk_s=_HOT_PATH_CHUNK_S,
                 engine=engine),
        ),
    )
    records = []
    for label, population in grid:
        spec = CellRunSpec(
            cell=population,
            carrier="att_hspa",
            policy=PolicySpec(scheme="fixed_4.5s").resolved(100),
            dormancy=DormancySpec(),
        )
        result = execute_cell(spec)
        device_hash = hashlib.sha256()
        for device in result.devices:
            device_hash.update(repr((
                device.device_id,
                device.policy_name,
                device.cohort,
                tuple(sorted(
                    (key, _hex(value))
                    for key, value in device.breakdown.as_dict().items()
                )),
                device.packets,
                device.dormancy_requests,
                device.dormancy_granted,
                device.dormancy_denied,
                device.delayed_sessions,
                _hex(device.total_session_delay_s),
            )).encode("utf-8"))
        switch_hash = hashlib.sha256(
            repr([_hex(t) for t in result.switch_times]).encode("utf-8")
        )
        records.append({
            "cell": label,
            "carrier": spec.carrier,
            "scheme": spec.policy.scheme,
            "dormancy": spec.dormancy.label,
            "devices": len(result.devices),
            "total_packets": result.total_packets,
            "total_switches": result.total_switches,
            "rrc_messages": result.signaling.messages,
            "peak_active_devices": result.peak_active_devices,
            "peak_switches_per_minute": result.peak_switches_per_minute,
            "duration_s_hex": _hex(result.duration_s),
            "total_energy_j_hex": _hex(result.total_energy_j),
            "device_digest": device_hash.hexdigest(),
            "switch_times_digest": switch_hash.hexdigest(),
        })
    return records


_TOURNAMENT_DEVICES = 9
_TOURNAMENT_DURATION_S = 400.0
#: Shard counts the tournament cell is pinned at.  Equal device digests
#: across these records *are* the streaming-learning shard contract: the
#: per-UE learner state never crosses a shard boundary.
_TOURNAMENT_SHARDS = (1, 3)


def _learning_tournament_records(engine: str = "scalar") -> list[dict[str, Any]]:
    """Digest-pinned policy-tournament cell at K ∈ {1, 3} shards.

    One ``learning_rollout`` scenario cell — a Learn-α MakeActive fleet, a
    histogram-predictor pilot cohort and a control cohort on the policy
    axis — executed single-process and sharded.  Per-device records
    (including the ``learn_*`` learning-curve columns) are folded into a
    sha256 digest over the lossless ``float.hex`` serialisation; the two
    records sharing one ``device_digest`` pins the streaming learning
    contract: sharding must not move a single learned float.
    """
    from ..api.cells import CellRunSpec, DormancySpec, cell, execute_cell
    from ..api.spec import PolicySpec

    records = []
    for shards in _TOURNAMENT_SHARDS:
        spec = CellRunSpec(
            cell=cell(devices=_TOURNAMENT_DEVICES, scenario="learning_rollout",
                      duration=_TOURNAMENT_DURATION_S, engine=engine),
            carrier="att_hspa",
            policy=PolicySpec(scheme="makeidle+makeactive_learn").resolved(100),
            dormancy=DormancySpec(),
            shards=shards,
        )
        result = execute_cell(spec)
        device_hash = hashlib.sha256()
        for device in result.devices:
            device_hash.update(repr((
                device.device_id,
                device.policy_name,
                device.cohort,
                tuple(sorted(
                    (key, _hex(value))
                    for key, value in device.breakdown.as_dict().items()
                )),
                device.packets,
                device.dormancy_requests,
                device.dormancy_granted,
                device.dormancy_denied,
                device.delayed_sessions,
                _hex(device.total_session_delay_s),
                device.learn_iterations,
                _hex(device.learn_delay_first_s),
                _hex(device.learn_delay_final_s),
            )).encode("utf-8"))
        switch_hash = hashlib.sha256(
            repr([_hex(t) for t in result.switch_times]).encode("utf-8")
        )
        summary = result.learning_summary()
        records.append({
            "cell": "learning_rollout_tournament",
            "carrier": spec.carrier,
            "scheme": spec.policy.scheme,
            "dormancy": spec.dormancy.label,
            "shards": shards,
            "devices": len(result.devices),
            "total_packets": result.total_packets,
            "total_switches": result.total_switches,
            "rrc_messages": result.signaling.messages,
            "peak_switches_per_minute": result.peak_switches_per_minute,
            "duration_s_hex": _hex(result.duration_s),
            "total_energy_j_hex": _hex(result.total_energy_j),
            "learning_devices": summary["learning_devices"],
            "learn_iterations": summary["learn_iterations"],
            "mean_delay_first_s_hex": _hex(summary["mean_delay_first_s"]),
            "mean_delay_final_s_hex": _hex(summary["mean_delay_final_s"]),
            "device_digest": device_hash.hexdigest(),
            "switch_times_digest": switch_hash.hexdigest(),
        })
    return records


_METRO_SHUFFLE_DEVICES = 10
_METRO_SHUFFLE_DURATION_S = 3600.0
_METRO_COMMUTER_DEVICES = 6
#: Long enough to cross the commuter departure time (8 h), so the
#: commuter preset contributes real mid-stream handovers to the record.
_METRO_COMMUTER_DURATION_S = 36000.0
_METRO_CHUNK_S = 300.0


def _metro_small_records(engine: str = "scalar") -> list[dict[str, Any]]:
    """Digest-pinned small metros: shuffle 4-cell + commuter 2-cell.

    Pins the whole metro layer — mobility timelines, visit windowing,
    the handover close-out, hierarchical merge and the global end time —
    down to the float.  Per-visit device results are folded into one
    sha256 digest per cell over a lossless ``float.hex`` serialisation
    (the :func:`_hot_path_records` convention), with handover/arrival
    counts and exact-hex energy totals kept in the clear.
    """
    from ..api.metro import MetroRunSpec, execute_metro, metro
    from ..api.spec import PolicySpec

    grid = (
        ("metro_4cell", _METRO_SHUFFLE_DEVICES, _METRO_SHUFFLE_DURATION_S,
         "status_quo"),
        ("metro_4cell", _METRO_SHUFFLE_DEVICES, _METRO_SHUFFLE_DURATION_S,
         "makeidle"),
        ("commuter_2cell", _METRO_COMMUTER_DEVICES,
         _METRO_COMMUTER_DURATION_S, "makeidle"),
    )
    records = []
    for name, devices, duration_s, policy_scheme in grid:
        spec = MetroRunSpec(
            metro=metro(name, devices=devices, duration=duration_s,
                        chunk_s=_METRO_CHUNK_S, engine=engine),
            carrier="att_hspa",
            policy=PolicySpec(scheme=policy_scheme).resolved(100),
        )
        result = execute_metro(spec)
        cells = []
        for entry in result.cells:
            device_hash = hashlib.sha256()
            for device in entry.result.devices:
                device_hash.update(repr((
                    device.device_id,
                    device.policy_name,
                    device.cohort,
                    tuple(sorted(
                        (key, _hex(value))
                        for key, value in device.breakdown.as_dict().items()
                    )),
                    device.packets,
                    device.dormancy_requests,
                    device.dormancy_granted,
                    device.dormancy_denied,
                    device.delayed_sessions,
                    _hex(device.total_session_delay_s),
                )).encode("utf-8"))
            cells.append({
                "cell": entry.name,
                "dormancy": entry.dormancy,
                "visits": entry.visits,
                "departures": entry.departures,
                "arrivals": entry.arrivals,
                "total_packets": entry.result.total_packets,
                "total_switches": entry.result.total_switches,
                "rrc_messages": entry.result.signaling.messages,
                "dormancy_requests": entry.result.dormancy_requests,
                "dormancy_denied": entry.result.dormancy_denied,
                "peak_active_devices": entry.result.peak_active_devices,
                "total_energy_j_hex": _hex(entry.result.total_energy_j),
                "device_digest": device_hash.hexdigest(),
            })
        records.append({
            "metro": name,
            "carrier": spec.carrier,
            "scheme": policy_scheme,
            "devices": devices,
            "handovers": result.handovers,
            "duration_s_hex": _hex(result.duration_s),
            "total_energy_j_hex": _hex(result.total_energy_j),
            "cells": cells,
        })
    return records


#: Golden suite name -> payload builder.  Adding a suite here makes it
#: refreshable by ``tools/refresh_golden.py`` and checked by
#: ``tests/integration/test_golden.py`` with no further wiring.
GOLDEN_BUILDERS: dict[str, Callable[[], list[dict[str, Any]]]] = {
    "single_ue": _single_ue_records,
    "small_cell": _small_cell_records,
    "scenario_cell": _scenario_cell_records,
    "hot_path_1k": _hot_path_records,
    "learning_tournament": _learning_tournament_records,
    "metro_small": _metro_small_records,
}

#: Suites whose builders take an ``engine=`` keyword: every cell/metro
#: suite.  ``single_ue`` has no device population — the backend switch
#: does not exist on the single-UE path, so the suite is backend-
#: invariant by construction.
ENGINE_AWARE_SUITES = frozenset(
    {"small_cell", "scenario_cell", "hot_path_1k", "learning_tournament",
     "metro_small"}
)


def build_golden(name: str, engine: str = "scalar") -> dict[str, Any]:
    """Build one golden suite's payload (records plus provenance header).

    ``engine`` selects the kernel backend for the cell/metro suites; the
    payload itself never records it — the backend contract is that every
    suite renders byte-identically whichever backend ran, so the vector
    parity test compares an ``engine="vector"`` rebuild against the same
    checked-in files the scalar test uses.
    """
    try:
        builder = GOLDEN_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown golden suite {name!r}; known: {sorted(GOLDEN_BUILDERS)}"
        ) from None
    if name in ENGINE_AWARE_SUITES:
        records = builder(engine=engine)
    else:
        records = builder()
    return {
        "suite": name,
        "refresh_with": "python tools/refresh_golden.py",
        "records": records,
    }


def render_golden(payload: dict[str, Any]) -> str:
    """Render a payload to the canonical JSON text compared byte-for-byte."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
