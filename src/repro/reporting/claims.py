"""The paper's quantitative claims, and checks of measured results against them.

Reproduction is about *shape*, not exact numbers: our substrate is a
simulator fed synthetic workloads, not the authors' phones and users.  Each
:class:`PaperClaim` therefore records the claim as a band — the value the
paper reports plus an acceptance interval wide enough that the qualitative
conclusion ("MakeIdle saves more than half the energy", "MakeActive brings
switches back to the status quo") still holds at its edges.
:func:`check_claims` evaluates measured values against those bands and is
what EXPERIMENTS.md and the headline benchmark assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["PaperClaim", "ClaimCheck", "PAPER_CLAIMS", "check_claims"]


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative statement from the paper, with an acceptance band."""

    key: str
    description: str
    source: str
    paper_value: float
    accept_low: float
    accept_high: float
    unit: str = "%"

    def __post_init__(self) -> None:
        if self.accept_low > self.accept_high:
            raise ValueError(
                f"claim {self.key!r}: accept_low must be <= accept_high"
            )

    def within_band(self, measured: float) -> bool:
        """Whether a measured value falls inside the acceptance band."""
        return self.accept_low <= measured <= self.accept_high


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of checking one measured value against one claim."""

    claim: PaperClaim
    measured: float

    @property
    def passed(self) -> bool:
        """Whether the measured value is inside the claim's acceptance band."""
        return self.claim.within_band(self.measured)

    @property
    def deviation(self) -> float:
        """Measured minus paper value (same unit as the claim)."""
        return self.measured - self.claim.paper_value


#: The headline quantitative claims of the paper, keyed by a short name used
#: by the benchmark harness and EXPERIMENTS.md.  Savings claims are expressed
#: in percent, switch-count claims as a multiple of the status quo, delay
#: claims in seconds.
PAPER_CLAIMS: dict[str, PaperClaim] = {
    claim.key: claim
    for claim in (
        PaperClaim(
            key="makeidle_3g_savings_low",
            description="MakeIdle energy saving across 3G carriers (lower end)",
            source="Abstract / Section 6.5 (Figure 17)",
            paper_value=51.0,
            accept_low=35.0,
            accept_high=80.0,
        ),
        PaperClaim(
            key="makeidle_3g_savings_high",
            description="MakeIdle energy saving across 3G carriers (upper end)",
            source="Abstract / Section 6.5 (Figure 17)",
            paper_value=66.0,
            accept_low=45.0,
            accept_high=85.0,
        ),
        PaperClaim(
            key="makeidle_lte_savings",
            description="MakeIdle energy saving on Verizon LTE",
            source="Abstract / Section 6.5 (Figure 17)",
            paper_value=67.0,
            accept_low=45.0,
            accept_high=85.0,
        ),
        PaperClaim(
            key="combined_3g_savings_high",
            description="MakeIdle+MakeActive saving, best 3G carrier (Verizon 3G)",
            source="Abstract / Section 6.5 (Figure 17)",
            paper_value=75.0,
            accept_low=50.0,
            accept_high=90.0,
        ),
        PaperClaim(
            key="combined_lte_savings",
            description="MakeIdle+MakeActive energy saving on Verizon LTE",
            source="Abstract / Section 6.5 (Figure 17)",
            paper_value=71.0,
            accept_low=50.0,
            accept_high=95.0,
        ),
        PaperClaim(
            key="makeidle_switch_overhead_max",
            description="MakeIdle switch count relative to status quo (at most)",
            source="Section 6.5 (Figure 18): less than 3.1x",
            paper_value=3.1,
            accept_low=1.0,
            accept_high=6.0,
            unit="x status quo",
        ),
        PaperClaim(
            key="combined_switch_overhead",
            description="MakeIdle+MakeActive switch count relative to status quo",
            source="Section 6.5 (Figure 18): about 1.33x or less",
            paper_value=1.33,
            accept_low=0.3,
            accept_high=2.0,
            unit="x status quo",
        ),
        PaperClaim(
            key="makeactive_median_delay",
            description="Median session delay introduced by MakeActive (Verizon 3G)",
            source="Section 6.5 / Table 3: 4.48 s median",
            paper_value=4.48,
            accept_low=0.5,
            accept_high=12.0,
            unit="s",
        ),
        PaperClaim(
            key="energy_model_error",
            description="Energy estimator error vs reference measurement",
            source="Section 6.1 / Figure 8: within 10%",
            paper_value=10.0,
            accept_low=0.0,
            accept_high=15.0,
        ),
        PaperClaim(
            key="tail_energy_fraction",
            description="Share of 3G energy spent in tail states (background apps)",
            source="Section 1 / Figure 1: about 60% or more",
            paper_value=60.0,
            accept_low=40.0,
            accept_high=95.0,
        ),
    )
}


def check_claims(
    measured: Mapping[str, float],
    claims: Mapping[str, PaperClaim] = PAPER_CLAIMS,
) -> list[ClaimCheck]:
    """Check measured values against the paper's claims.

    Only claims present in ``measured`` are checked; unknown measurement keys
    raise, because a silently ignored measurement usually means a typo in the
    harness.
    """
    unknown = sorted(set(measured) - set(claims))
    if unknown:
        raise KeyError(f"measurements with no matching claim: {unknown}")
    return [
        ClaimCheck(claim=claims[key], measured=value)
        for key, value in measured.items()
    ]
