"""Result rendering: text/markdown tables, CSV export, paper-vs-measured reports.

The :mod:`repro.analysis` drivers return plain data structures; this package
turns them into artefacts people actually read — fixed-width tables for the
terminal, markdown tables for EXPERIMENTS.md, CSV files for spreadsheets,
and a paper-comparison report that checks every measured headline number
against the claim the paper makes for it.
"""

from .claims import PAPER_CLAIMS, ClaimCheck, PaperClaim, check_claims
from .render import (
    csv_rows,
    format_markdown_table,
    format_percent,
    format_seconds,
    write_csv,
)
from .report import experiments_report, headline_report

__all__ = [
    "PAPER_CLAIMS",
    "ClaimCheck",
    "PaperClaim",
    "check_claims",
    "csv_rows",
    "experiments_report",
    "format_markdown_table",
    "format_percent",
    "format_seconds",
    "headline_report",
    "write_csv",
]
