"""Runner backends: execute a plan's grid serially or on a process pool.

A *runner* turns an :class:`~repro.api.plan.ExperimentPlan` (or an explicit
spec sequence) into a :class:`~repro.api.runset.RunSet`.  Both built-in
backends share one contract:

* results are **deterministic and order-preserving** — the run set's records
  are in plan expansion order, and a fixed-seed plan yields byte-identical
  records from :class:`SerialRunner` and :class:`ProcessPoolRunner`;
* duplicated grid cells (most importantly the status-quo baseline shared by
  every scheme comparison) are **simulated once** and served from the
  runner's :class:`~repro.api.cache.ResultCache` thereafter.  The cache
  lives on the runner, so successive ``run()`` calls — e.g. several thin
  experiment drivers in one report — keep sharing baselines.

:class:`ProcessPoolRunner` deduplicates *before* submitting, so each unique
(trace, carrier, policy) cell crosses the process boundary exactly once; the
workers rebuild traces and policies from the picklable specs via
:func:`repro.api.spec.execute`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Protocol, Sequence, Union, runtime_checkable

from ..basestation.cell import CellResult, merge_cell_shards
from ..metro.execution import MetroResult
from ..sim.results import SimulationResult
from .cache import CacheStats, ResultCache
from .cells import CellRunSpec, execute_cell, execute_cell_shard
from .metro import (
    MetroRunSpec,
    execute_metro,
    execute_metro_cell_shard,
    merge_metro_run,
)
from .plan import ExperimentPlan
from .runset import RunRecord, RunSet
from .spec import RunSpec, execute

__all__ = [
    "PoolExecution",
    "usable_cpu_count",
    "Runner",
    "SerialRunner",
    "ProcessPoolRunner",
    "default_runner",
    "execute_spec",
]


@dataclass(frozen=True)
class PoolExecution:
    """How a :class:`ProcessPoolRunner` actually executed one ``run()``.

    The requested worker count is *clamped to usable cores* before any
    pool is spawned: pool fan-out only ever parallelises, so a
    configuration whose measured speedup would be < 1 purely by
    construction (more workers than cores, or a pool on a 1-core box) is
    never shipped — it falls back to the serial in-process path, which is
    byte-identical.  Attached to the produced :class:`RunSet` so result
    records can state the clamp (``pool_jobs`` / ``pool_clamped`` columns
    in ``to_records()``, and the BENCH sections).
    """

    requested_jobs: int
    usable_cores: int
    effective_jobs: int
    pool_used: bool

    @property
    def clamped(self) -> bool:
        """Whether fewer workers than requested could usefully run."""
        return self.effective_jobs < self.requested_jobs

#: One cell of any sweep grid: single-UE, cell-scale or metro-scale.
AnySpec = Union[RunSpec, CellRunSpec, MetroRunSpec]
AnyResult = Union[SimulationResult, CellResult, MetroResult]


def usable_cpu_count() -> int:
    """Cores this process may actually schedule on.

    CPU affinity / cgroup masks (containers, ``taskset``) often grant far
    fewer cores than the machine has; ``os.cpu_count()`` ignores them and
    would size pools for hardware the process cannot touch.  Falls back
    to ``os.cpu_count()`` where affinity is not exposed (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def execute_spec(spec: AnySpec) -> AnyResult:
    """Materialise and run one grid cell of either kind.

    The single entry point of both runner backends (module-level so the
    process pool can send it to workers by reference): single-UE
    :class:`RunSpec`s go through the trace simulator, :class:`CellRunSpec`s
    through the cell simulator — both riding the same event kernel.
    """
    if isinstance(spec, MetroRunSpec):
        return execute_metro(spec)
    if isinstance(spec, CellRunSpec):
        return execute_cell(spec)
    return execute(spec)


@runtime_checkable
class Runner(Protocol):
    """Anything that can execute a plan into a :class:`RunSet`."""

    def run(self, plan: ExperimentPlan | Sequence[AnySpec]) -> RunSet:
        """Execute every grid cell and return the ordered results."""
        ...


def _as_specs(plan: ExperimentPlan | Sequence[AnySpec]) -> tuple[AnySpec, ...]:
    if isinstance(plan, ExperimentPlan):
        return plan.build()
    return tuple(plan)


class _BaseRunner:
    """Shared cache plumbing of the concrete backends."""

    def __init__(self, cache: ResultCache | None = None) -> None:
        self._cache = cache if cache is not None else ResultCache()

    @property
    def cache(self) -> ResultCache:
        """The runner's result cache (shared across its ``run()`` calls)."""
        return self._cache

    def _delta(self, before: CacheStats) -> CacheStats:
        after = self._cache.stats
        return CacheStats(
            after.hits - before.hits, after.misses - before.misses, after.size,
            after.disk_hits - before.disk_hits,
        )


class SerialRunner(_BaseRunner):
    """Execute every spec in order in the calling process.

    The reference backend: simplest, always available, and the semantics
    yardstick the parallel backend is tested against.
    """

    def run(self, plan: ExperimentPlan | Sequence[AnySpec]) -> RunSet:
        """Execute the plan's cells one after another."""
        specs = _as_specs(plan)
        before = self._cache.stats
        records: list[RunRecord] = []
        for spec in specs:
            key = spec.cache_key
            cached = key in self._cache
            result = self._cache.get_or_run(key, lambda s=spec: execute_spec(s))
            records.append(RunRecord(spec=spec, result=result, from_cache=cached))
        return RunSet(records, self._delta(before))


class ProcessPoolRunner(_BaseRunner):
    """Execute the plan's unique cells concurrently on worker processes.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to the usable (affinity-aware)
        core count.
    cache:
        Optional shared :class:`ResultCache`; results computed by the pool
        land in it exactly as serial results would.

    Records come back in plan expansion order regardless of completion
    order, and each unique cell is submitted at most once, so the backend
    is byte-for-byte equivalent to :class:`SerialRunner` on the same plan.
    """

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None) -> None:
        super().__init__(cache)
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._jobs = jobs if jobs is not None else usable_cpu_count()

    @property
    def jobs(self) -> int:
        """The worker process count this runner was configured with."""
        return self._jobs

    @property
    def usable_cores(self) -> int:
        """Cores the pool can actually spread workers over.

        Affinity-aware (:func:`usable_cpu_count`): a process pinned to one
        core of a 16-core host gets 1, not 16 — otherwise the clamp would
        ship exactly the contended pool it exists to prevent.
        """
        return usable_cpu_count()

    @property
    def effective_jobs(self) -> int:
        """The worker count after clamping to usable cores.

        A pool wider than the machine only adds scheduling overhead —
        worker processes multiplex on the same cores — so the runner never
        spawns more workers than cores, and with one effective worker it
        skips the pool entirely (serial in-process execution of the same
        specs/shards: byte-identical results, no pool tax).  This is what
        makes a "sharded" configuration's measured speedup ≥ 1 by
        construction on machines where the pool cannot help.
        """
        return min(self._jobs, self.usable_cores)

    def run(self, plan: ExperimentPlan | Sequence[AnySpec]) -> RunSet:
        """Execute the plan, fanning unique uncached cells out to the pool."""
        specs = _as_specs(plan)
        before = self._cache.stats

        # Phase 1: one representative spec per unique, uncached cell.  Holding
        # a reference to each pre-cached result keeps it reachable for phase 3
        # even if a bounded cache evicts it while this run stores new entries.
        pending: dict[Hashable, AnySpec] = {}
        held: dict[Hashable, AnyResult] = {}
        for spec in specs:
            key = spec.cache_key
            if key in pending or key in held:
                continue
            existing = self._cache.peek(key)
            if existing is not None:
                held[key] = existing
            else:
                pending[key] = spec

        # Phase 2: simulate the misses (pool only when it can actually help).
        # A sharded cell spec fans out into one task per shard — and a metro
        # spec into one task per (cell, shard) — so a single big run can
        # occupy every worker; the partials are merged back here in the
        # parent (see repro.basestation.cell / repro.metro.execution).
        def _task_count(spec: AnySpec) -> int:
            if isinstance(spec, MetroRunSpec):
                return spec.n_cells * spec.effective_shards
            return (
                spec.effective_shards if isinstance(spec, CellRunSpec) else 1
            )

        fresh: dict[Hashable, AnyResult] = {}
        total_tasks = sum(_task_count(spec) for spec in pending.values())
        effective_jobs = self.effective_jobs
        pool_used = total_tasks > 1 and effective_jobs > 1 and bool(pending)
        if not pool_used:
            # One task, one usable worker, or a pool the cores cannot
            # feed: execute_spec runs everything (a sharded spec's
            # partitions included) sequentially in-process — same merged
            # result, no pool overhead.
            for key, spec in pending.items():
                fresh[key] = execute_spec(spec)
        else:
            workers = min(effective_jobs, total_tasks)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures: dict[Hashable, object] = {}
                for key, spec in pending.items():
                    if isinstance(spec, MetroRunSpec):
                        # Cell-major task order: merge_metro_run relies on
                        # partial (ci, si) sitting at index ci * shards + si.
                        futures[key] = [
                            pool.submit(
                                execute_metro_cell_shard, spec, ci, si
                            )
                            for ci in range(spec.n_cells)
                            for si in range(spec.effective_shards)
                        ]
                        continue
                    count = _task_count(spec)
                    if count > 1:
                        futures[key] = [
                            pool.submit(execute_cell_shard, spec, index)
                            for index in range(count)
                        ]
                    else:
                        futures[key] = pool.submit(execute_spec, spec)
                for key, future in futures.items():
                    if isinstance(future, list):
                        partials = [shard.result() for shard in future]
                        spec = pending[key]
                        if isinstance(spec, MetroRunSpec):
                            fresh[key] = merge_metro_run(spec, partials)
                        else:
                            fresh[key] = merge_cell_shards(partials)
                    else:
                        fresh[key] = future.result()
        for key, result in fresh.items():
            self._cache.put(key, result)

        # Phase 3: assemble records in plan order.  The first appearance of a
        # freshly simulated cell is the miss already counted by put(); every
        # other lookup — duplicates within the plan or pre-cached cells — is
        # a hit, exactly as the serial backend would count it.  The local
        # `fresh` map keeps this run's results reachable even if a bounded
        # cache evicted them mid-run.
        records: list[RunRecord] = []
        first_use = set(fresh)
        for spec in specs:
            key = spec.cache_key
            if key in first_use:
                first_use.discard(key)
                result = fresh[key]
                from_cache = False
            else:
                result = self._cache.lookup(key)
                if result is None:  # evicted mid-run by a bounded cache
                    result = fresh[key] if key in fresh else held[key]
                from_cache = True
            records.append(RunRecord(spec=spec, result=result, from_cache=from_cache))
        return RunSet(records, self._delta(before), execution=PoolExecution(
            requested_jobs=self._jobs,
            usable_cores=self.usable_cores,
            effective_jobs=effective_jobs,
            pool_used=pool_used,
        ))


#: Module-level runner shared by the thin experiment drivers, so repeated
#: driver calls in one process (e.g. several figures of one report) reuse
#: each other's baselines instead of re-simulating them.  Its cache is
#: LRU-bounded so long-lived processes sweeping ever-new traces (notebooks,
#: services) cannot grow memory without limit.
_SHARED_RUNNER: SerialRunner | None = None
_SHARED_CACHE_MAX_ENTRIES = 512


def default_runner() -> SerialRunner:
    """The process-wide shared :class:`SerialRunner` used by the legacy drivers."""
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        _SHARED_RUNNER = SerialRunner(
            cache=ResultCache(max_entries=_SHARED_CACHE_MAX_ENTRIES)
        )
    return _SHARED_RUNNER
