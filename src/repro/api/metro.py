"""Metro axis entries and execution for the experiment API.

The metro analogue of :mod:`repro.api.cells`: :class:`MetroSpec` is the
plan-axis entry (a topology plus a UE population), :class:`MetroRunSpec`
one executable grid point, and :func:`execute_metro` /
:func:`execute_metro_cell_shard` the serial and fan-out execution units.
Hierarchical sharding means a runner splits a metro run into
``n_cells × shards`` independent tasks — each a UE-block shard of one
cell — and merges them through
:func:`repro.metro.execution.merge_metro_shards`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Any, Mapping

from ..metro.execution import (
    MetroResult,
    merge_metro_shards,
    run_metro_cell_shard,
)
from ..metro.presets import METRO_BUILDERS, get_metro
from ..metro.topology import Metro
from ..rrc.profiles import get_profile
from .spec import PolicySpec

__all__ = [
    "MetroRunSpec",
    "MetroSpec",
    "execute_metro",
    "execute_metro_cell_shard",
    "merge_metro_run",
    "metro",
]


@dataclass(frozen=True)
class MetroSpec:
    """A metro-population axis entry: topology × UE count × horizon.

    The metro counterpart of :class:`~repro.api.cells.CellSpec`: the
    topology (cells, station policies, mobility, workload mix) comes from
    the :class:`~repro.metro.topology.Metro`, and this spec adds the UE
    population size, the simulated horizon and the generation seed.  The
    seed feeds both the mobility timelines (``crc32("metro/<seed>/<i>")``)
    and the scenario-less workloads (``crc32("metroapp/<seed>/<i>")``).
    """

    metro: Metro
    devices: int = 1000
    duration_s: float = 3600.0
    seed: int = 0
    chunk_s: float = 300.0
    name: str = ""
    #: Kernel backend executing every cell of this metro: ``"scalar"`` or
    #: ``"vector"`` (byte-identical numpy batch backend).  Not part of
    #: :attr:`fingerprint` — both backends share cache entries.
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if not isinstance(self.engine, str):
            raise TypeError(
                f"engine must be str, got {type(self.engine).__name__}"
            )
        if self.engine not in ("scalar", "vector"):
            raise ValueError(
                f"engine must be 'scalar' or 'vector', got {self.engine!r}"
            )
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.chunk_s <= 0:
            raise ValueError(f"chunk_s must be positive, got {self.chunk_s}")

    @property
    def label(self) -> str:
        """Short identity for tables/grouping (seed-independent digest)."""
        if self.name:
            return self.name
        identity = repr((self.metro.fingerprint, self.duration_s,
                         self.chunk_s))
        digest = zlib.crc32(identity.encode("utf-8"))
        return f"{self.metro.name}{self.devices}-{digest:08x}"

    @property
    def fingerprint(self) -> tuple:
        """Stable cache-key component identifying this metro population."""
        return (
            "metro-spec",
            self.metro.fingerprint,
            self.devices,
            self.duration_s,
            self.seed,
            self.chunk_s,
        )

    def with_seed(self, seed: int) -> "MetroSpec":
        """Return a copy regenerated under ``seed``."""
        return replace(self, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """Serialisable form — preset metros only, referenced by name.

        An inline (non-preset) topology has no stable name another
        process could resolve, so — like inline traces — it refuses
        serialisation rather than pickling a topology into the plan file.
        """
        builder = METRO_BUILDERS.get(self.metro.name)
        if builder is None or get_metro(self.metro.name) != self.metro:
            raise ValueError(
                f"metro {self.metro.name!r} is not a registered preset; "
                "inline metros cannot be serialised into plans"
            )
        data = {
            "metro": self.metro.name,
            "devices": self.devices,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "chunk_s": self.chunk_s,
            "name": self.name,
        }
        if self.engine != "scalar":
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetroSpec":
        payload = dict(data)
        payload["metro"] = get_metro(payload["metro"])
        return cls(**payload)


@dataclass(frozen=True)
class MetroRunSpec:
    """One metro grid point: population × carrier × device policy × shards.

    ``shards`` is the *per-cell* shard count of the hierarchical
    partition: the runner executes ``n_cells × effective_shards``
    independent tasks.  There is no run-level dormancy axis — station
    policies belong to the metro's cells.
    """

    metro: MetroSpec
    carrier: str
    policy: PolicySpec
    seed: int = 0
    shards: int = 1

    def __post_init__(self) -> None:
        get_profile(self.carrier)  # validate the key early, with a clear error
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    @property
    def effective_shards(self) -> int:
        """Per-cell shard count actually executed (≤ one UE per shard)."""
        return min(self.shards, self.metro.devices)

    @property
    def n_cells(self) -> int:
        return len(self.metro.metro.cells)

    @property
    def cache_key(self) -> tuple:
        """Cache/dedup key of this metro run.

        Unlike cell runs there is no status-quo dormancy collapse: the
        station policies are part of the topology fingerprint, so they
        always participate.  The shard count stays in the key because
        metro aggregates (per-cell ``peak_active_devices``) carry the
        same shard-dependent precision as cell runs.
        """
        return (
            self.metro.fingerprint,
            self.carrier,
            self.policy.key,
            self.effective_shards,
        )

    @property
    def scheme(self) -> str:
        """The device-side policy's scheme name."""
        return self.policy.scheme

    @property
    def label(self) -> str:
        """The population label (the metro-axis value of this run)."""
        return self.metro.label


def metro(name_or_metro: str | Metro, devices: int = 1000,
          duration: float = 3600.0, seed: int = 0, name: str = "",
          chunk_s: float = 300.0, engine: str = "scalar") -> MetroSpec:
    """A metro-population axis entry for metro sweeps.

    ``name_or_metro`` is a preset name (``"commuter_2cell"``,
    ``"metro_4cell"``, ...) or an inline
    :class:`~repro.metro.topology.Metro`.
    """
    topology = (
        get_metro(name_or_metro)
        if isinstance(name_or_metro, str) else name_or_metro
    )
    return MetroSpec(metro=topology, devices=devices, duration_s=duration,
                     seed=seed, name=name, chunk_s=chunk_s, engine=engine)


def execute_metro_cell_shard(
    spec: MetroRunSpec, cell_index: int, shard_index: int
):
    """Run one (cell, UE-block) task of a metro run — the fan-out unit.

    Module-level and driven purely by the picklable spec, so the process
    pool can ship every task of one metro run to different workers.
    Returns ``None`` when the block contributes no visits to the cell.
    """
    ms = spec.metro
    return run_metro_cell_shard(
        ms.metro, cell_index, ms.devices, ms.duration_s, ms.seed, ms.chunk_s,
        spec.policy, spec.carrier, spec.effective_shards, shard_index,
        engine=ms.engine,
    )


def merge_metro_run(spec: MetroRunSpec, partials) -> MetroResult:
    """Merge the flat task list of :func:`execute_metro_cell_shard` calls.

    ``partials`` is ordered cell-major: task ``(ci, si)`` at index
    ``ci * effective_shards + si`` — the order the runner submitted them.
    """
    k = spec.effective_shards
    expected = spec.n_cells * k
    if len(partials) != expected:
        raise ValueError(
            f"expected {expected} partials ({spec.n_cells} cells × {k} "
            f"shards), got {len(partials)}"
        )
    shards_by_cell = [partials[ci * k:(ci + 1) * k]
                      for ci in range(spec.n_cells)]
    return merge_metro_shards(spec.metro.metro, spec.metro.devices,
                              shards_by_cell)


def execute_metro(spec: MetroRunSpec, shards: int | None = None) -> MetroResult:
    """Materialise and run one metro spec — the serial reference path.

    All ``n_cells × shards`` tasks run sequentially in this process and
    merge; cross-process parallelism belongs to the runner layer, which
    ships :func:`execute_metro_cell_shard` calls to workers instead.
    """
    if shards is not None:
        spec = replace(spec, shards=shards)
    k = spec.effective_shards
    partials = [
        execute_metro_cell_shard(spec, ci, si)
        for ci in range(spec.n_cells)
        for si in range(k)
    ]
    return merge_metro_run(spec, partials)
