"""Deduplicating result cache shared by the runner backends.

Every cell of a sweep grid is keyed by
``(trace fingerprint, carrier key, policy key)`` — see
:attr:`~repro.api.spec.RunSpec.cache_key` — or, for cell-scale sweeps,
``(population fingerprint, carrier, device policy, dormancy policy)`` — see
:attr:`~repro.api.cells.CellRunSpec.cache_key`.  Because the status-quo baseline
appears in every scheme comparison, a sweep that would naively simulate it
once per driver (or once per scheme column) instead simulates it exactly
once per (trace, carrier) pair and serves every further request from here.
The hit/miss counters make that claim testable: a correct sweep shows zero
duplicate status-quo simulations.

Two tiers:

* **Memory** — a plain LRU-bounded mapping.  Simulation results are
  immutable, so sharing them between callers is safe, and the
  process-pool runner deduplicates *before* submitting work so this tier
  never needs to be shared across processes.
* **Disk** (optional, :class:`DiskCacheTier`) — content-addressed files
  keyed by the spec fingerprint, so repeated sweeps across *sessions*
  (or across cooperating processes) load results instead of
  re-simulating.  Writes are atomic (temp file + ``os.replace``) and
  version-stamped; any unreadable, truncated or mismatched file is a
  clean miss that re-simulates and overwrites.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Hashable, Iterator, Union

from ..sim.results import SimulationResult

if TYPE_CHECKING:  # avoid a basestation import at runtime for type hints only
    from ..basestation.cell import CellResult

    CachedResult = Union[SimulationResult, "CellResult"]
else:
    CachedResult = SimulationResult

__all__ = ["CacheStats", "DiskCacheTier", "ResultCache", "default_cache_dir"]

#: Environment variable that both names the default cache directory and
#: opts the CLI into the persistent tier without a ``--cache-dir`` flag.
CACHE_DIR_ENV = "REPRO_RRC_CACHE_DIR"


def default_cache_dir() -> Path:
    """The persistent tier's default directory.

    ``$REPRO_RRC_CACHE_DIR`` when set, else ``$XDG_CACHE_HOME/repro-rrc``,
    else ``~/.cache/repro-rrc``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-rrc"


class CacheStats:
    """A point-in-time snapshot of a cache's counters.

    ``disk_hits`` counts lookups the memory tier missed but the
    persistent tier served (they are *also* counted in ``hits`` — a disk
    hit is still a lookup served without simulating).
    """

    __slots__ = ("hits", "misses", "size", "disk_hits")

    def __init__(self, hits: int, misses: int, size: int,
                 disk_hits: int = 0) -> None:
        self.hits = hits
        self.misses = misses
        self.size = size
        self.disk_hits = disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        disk = f", disk_hits={self.disk_hits}" if self.disk_hits else ""
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"size={self.size}{disk})"
        )


class DiskCacheTier:
    """Content-addressed persistent result files under one directory.

    Filenames are the SHA-256 of the cache key's canonical ``repr`` —
    the same nested-primitive-tuple fingerprints the memory tier hashes —
    so cooperating processes (and later sessions) address the same file
    for the same spec without coordination.  The stored payload carries a
    format version and the full key repr; :meth:`load` treats *any*
    irregularity — unpickling error, truncated file, version or key
    mismatch — as a clean miss and deletes the offender so the slot heals
    on the next store.

    Writes go to a temp file in the same directory followed by
    ``os.replace``, so concurrent writers are safe: readers only ever see
    a complete file (the atomicity the disk-cache tests exercise).
    """

    #: Bump when the pickled payload layout (or anything that affects the
    #: byte-compatibility of stored results) changes: old files then read
    #: as version mismatches, i.e. clean misses.
    FORMAT_VERSION = 1

    def __init__(self, directory: str | Path | None = None) -> None:
        self._dir = Path(directory) if directory is not None else default_cache_dir()
        self._loads = 0
        self._stores = 0

    @property
    def directory(self) -> Path:
        """The directory holding the result files."""
        return self._dir

    @property
    def loads(self) -> int:
        """Results served from disk so far."""
        return self._loads

    @property
    def stores(self) -> int:
        """Results written to disk so far."""
        return self._stores

    @staticmethod
    def _key_repr(key: Hashable) -> str:
        return repr(key)

    def path_for(self, key: Hashable) -> Path:
        """The content-addressed file path of ``key``."""
        digest = hashlib.sha256(
            self._key_repr(key).encode("utf-8")
        ).hexdigest()
        return self._dir / f"{digest}.pkl"

    def load(self, key: Hashable) -> CachedResult | None:
        """Return the stored result for ``key``, or ``None`` on any miss.

        Corruption of any kind never propagates: a file that cannot be
        read, unpickled or validated is removed (best effort) and the
        caller re-simulates.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("format") != self.FORMAT_VERSION
                or payload.get("key") != self._key_repr(key)
            ):
                raise ValueError("cache file failed validation")
            result = payload["result"]
        except FileNotFoundError:
            return None
        except Exception:
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._loads += 1
        return result

    def store(self, key: Hashable, result: CachedResult) -> None:
        """Persist ``result`` under ``key`` atomically (best effort).

        A filesystem that refuses the write (read-only, full, ...) fails
        quietly: the disk tier is an accelerator, never a correctness
        dependency.
        """
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "format": self.FORMAT_VERSION,
                "key": self._key_repr(key),
                "result": result,
            }
            fd, tmp = tempfile.mkstemp(
                dir=self._dir, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self.path_for(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._stores += 1


class ResultCache:
    """Two-tier map from run cache keys to simulation results, with counters.

    A *miss* is recorded when a result is first computed and stored; a *hit*
    whenever a later lookup is served without simulating — from memory or,
    failing that, from the optional persistent tier.  ``get_or_run`` is
    the serial fast path; the process-pool runner uses ``lookup`` / ``put``
    so it can batch the misses into one executor submission.

    ``max_entries`` bounds the in-memory tier with LRU eviction (least
    recently *used*, so a long sweep's hot baselines survive), keeping
    long-running sessions bounded; evicted entries remain reachable
    through the disk tier when one is attached, because every ``put``
    writes through.  ``None`` (the default) keeps everything in memory.
    """

    def __init__(self, max_entries: int | None = None,
                 disk: DiskCacheTier | str | Path | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._entries: dict[Hashable, CachedResult] = {}
        self._max_entries = max_entries
        if disk is not None and not isinstance(disk, DiskCacheTier):
            disk = DiskCacheTier(disk)
        self._disk = disk
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    def _evict_overflow(self) -> None:
        if self._max_entries is None:
            return
        while len(self._entries) > self._max_entries:
            self._entries.pop(next(iter(self._entries)))

    def _touch(self, key: Hashable) -> None:
        """Move ``key`` to the most-recently-used end of the LRU order."""
        self._entries[key] = self._entries.pop(key)

    def _disk_load(self, key: Hashable) -> CachedResult | None:
        if self._disk is None:
            return None
        result = self._disk.load(key)
        if result is not None:
            # Promote to memory so repeated lookups stay O(1); the
            # promotion counts toward the LRU bound like any entry.
            self._entries[key] = result
            self._evict_overflow()
        return result

    # -- counters --------------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lookups served from the cache so far (either tier)."""
        return self._hits

    @property
    def misses(self) -> int:
        """Results that had to be simulated and stored so far."""
        return self._misses

    @property
    def disk_hits(self) -> int:
        """Lookups the memory tier missed but the disk tier served."""
        return self._disk_hits

    @property
    def disk(self) -> DiskCacheTier | None:
        """The attached persistent tier, if any."""
        return self._disk

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the current counters and size."""
        return CacheStats(self._hits, self._misses, len(self._entries),
                          self._disk_hits)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    # -- access ----------------------------------------------------------------------

    def get_or_run(
        self, key: Hashable, run: Callable[[], CachedResult]
    ) -> CachedResult:
        """Return the cached result for ``key``, computing it via ``run`` once."""
        try:
            result = self._entries[key]
        except KeyError:
            result = self._disk_load(key)
            if result is not None:
                self._hits += 1
                self._disk_hits += 1
                return result
            result = run()
            self._entries[key] = result
            self._misses += 1
            if self._disk is not None:
                self._disk.store(key, result)
            self._evict_overflow()
            return result
        self._hits += 1
        self._touch(key)
        return result

    def peek(self, key: Hashable) -> CachedResult | None:
        """Return the cached result without touching the counters.

        Consults both tiers (a disk result is promoted to memory) but
        counts neither hits nor misses — the pool runner's dedup pass
        uses this so its phase-3 bookkeeping owns the counter semantics.
        """
        result = self._entries.get(key)
        if result is not None:
            return result
        return self._disk_load(key)

    def lookup(self, key: Hashable) -> CachedResult | None:
        """Return the cached result and count a hit, or ``None`` without counting."""
        result = self._entries.get(key)
        if result is not None:
            self._hits += 1
            self._touch(key)
            return result
        result = self._disk_load(key)
        if result is not None:
            self._hits += 1
            self._disk_hits += 1
        return result

    def put(self, key: Hashable, result: CachedResult) -> None:
        """Store a freshly computed result, counting one miss."""
        self._entries[key] = result
        self._misses += 1
        if self._disk is not None:
            self._disk.store(key, result)
        self._evict_overflow()

    def clear(self) -> None:
        """Drop all in-memory entries and reset the counters.

        The persistent tier is left untouched — its whole point is
        surviving the in-memory lifecycle; delete its directory to
        really forget.
        """
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
