"""Deduplicating result cache shared by the runner backends.

Every cell of a sweep grid is keyed by
``(trace fingerprint, carrier key, policy key)`` — see
:attr:`~repro.api.spec.RunSpec.cache_key` — or, for cell-scale sweeps,
``(population fingerprint, carrier, device policy, dormancy policy)`` — see
:attr:`~repro.api.cells.CellRunSpec.cache_key`.  Because the status-quo baseline
appears in every scheme comparison, a sweep that would naively simulate it
once per driver (or once per scheme column) instead simulates it exactly
once per (trace, carrier) pair and serves every further request from here.
The hit/miss counters make that claim testable: a correct sweep shows zero
duplicate status-quo simulations.

The cache is deliberately a plain in-memory mapping: simulation results are
immutable dataclasses, so sharing them between callers is safe, and the
process-pool runner deduplicates *before* submitting work so the cache never
needs to be shared across processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Iterator, Union

from ..sim.results import SimulationResult

if TYPE_CHECKING:  # avoid a basestation import at runtime for type hints only
    from ..basestation.cell import CellResult

    CachedResult = Union[SimulationResult, "CellResult"]
else:
    CachedResult = SimulationResult

__all__ = ["CacheStats", "ResultCache"]


class CacheStats:
    """A point-in-time snapshot of a cache's counters."""

    __slots__ = ("hits", "misses", "size")

    def __init__(self, hits: int, misses: int, size: int) -> None:
        self.hits = hits
        self.misses = misses
        self.size = size

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"size={self.size})"
        )


class ResultCache:
    """In-memory map from run cache keys to simulation results, with counters.

    A *miss* is recorded when a result is first computed and stored; a *hit*
    whenever a later lookup is served without simulating.  ``get_or_run`` is
    the serial fast path; the process-pool runner uses ``lookup`` / ``put``
    so it can batch the misses into one executor submission.

    ``max_entries`` bounds the cache with FIFO eviction (oldest stored entry
    first), so open-ended sweeps over ever-new traces cannot grow memory
    without limit; ``None`` (the default) keeps everything.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._entries: dict[Hashable, CachedResult] = {}
        self._max_entries = max_entries
        self._hits = 0
        self._misses = 0

    def _evict_overflow(self) -> None:
        if self._max_entries is None:
            return
        while len(self._entries) > self._max_entries:
            self._entries.pop(next(iter(self._entries)))

    # -- counters --------------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lookups served from the cache so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Results that had to be simulated and stored so far."""
        return self._misses

    @property
    def stats(self) -> CacheStats:
        """Snapshot of the current counters and size."""
        return CacheStats(self._hits, self._misses, len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    # -- access ----------------------------------------------------------------------

    def get_or_run(
        self, key: Hashable, run: Callable[[], CachedResult]
    ) -> CachedResult:
        """Return the cached result for ``key``, computing it via ``run`` once."""
        try:
            result = self._entries[key]
        except KeyError:
            result = run()
            self._entries[key] = result
            self._misses += 1
            self._evict_overflow()
            return result
        self._hits += 1
        return result

    def peek(self, key: Hashable) -> CachedResult | None:
        """Return the cached result without touching the counters."""
        return self._entries.get(key)

    def lookup(self, key: Hashable) -> CachedResult | None:
        """Return the cached result and count a hit, or ``None`` without counting."""
        result = self._entries.get(key)
        if result is not None:
            self._hits += 1
        return result

    def put(self, key: Hashable, result: CachedResult) -> None:
        """Store a freshly computed result, counting one miss."""
        self._entries[key] = result
        self._misses += 1
        self._evict_overflow()

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
