"""Unified experiment API: declare a plan, execute it, analyse the run set.

Every evaluation result in the paper is a sweep over workload × carrier ×
policy.  This package gives that sweep a first-class lifecycle::

    from repro.api import plan, SerialRunner, ProcessPoolRunner

    p = (plan()
         .apps("email", "im", duration=1800.0)
         .carriers("att_hspa", "verizon_lte")
         .policies("status_quo", "makeidle", "oracle"))

    runs = ProcessPoolRunner(jobs=4).run(p)      # or SerialRunner().run(p)
    for cell, table in runs.savings().items():
        print(cell, {s: f"{r.saved_percent:.1f}%" for s, r in table.items()})
    runs.to_csv("sweep.csv")

* :func:`plan` / :class:`ExperimentPlan` — fluent, immutable grid declaration;
* :class:`TraceSpec` / :class:`PolicySpec` / :class:`RunSpec` — picklable
  descriptions of each grid cell (helpers :func:`app`, :func:`user`,
  :func:`pcap`, :func:`tcpdump`, :func:`inline`, :func:`scheme`);
* :class:`SerialRunner` / :class:`ProcessPoolRunner` — execution backends
  with a shared, hit/miss-counting :class:`ResultCache` so the status-quo
  baseline is simulated once per (trace, carrier);
* :class:`RunSet` / :class:`RunRecord` — structured results with grouping,
  baseline normalisation and CSV/JSON export.

The legacy drivers in :mod:`repro.analysis.experiments` are thin wrappers
over this API, and ``repro-rrc sweep`` exposes it on the command line.

Cell sweeps take heterogeneous populations via the scenario library
(:mod:`repro.scenarios`): ``plan().scenarios("office_day", devices=1000)``
sweeps a cohort-weighted, diurnally shaped population, and the run set
reports per-cohort energy/denial/switch breakdowns.
"""

from .cache import CacheStats, DiskCacheTier, ResultCache, default_cache_dir
from .cells import (
    CellRunSpec,
    CellSpec,
    DormancySpec,
    cell,
    dormancy,
    execute_cell,
    execute_cell_shard,
    shard_sizes,
)
from ..scenarios import (
    Cohort,
    DeviceArchetype,
    DiurnalShape,
    Scenario,
    get_scenario,
)
from .metro import (
    MetroRunSpec,
    MetroSpec,
    execute_metro,
    execute_metro_cell_shard,
    metro,
)
from ..metro import Metro, MetroCell, MetroResult, get_metro
from .plan import EmptyAxisError, ExperimentPlan, plan
from .runner import (
    PoolExecution,
    ProcessPoolRunner,
    Runner,
    SerialRunner,
    default_runner,
    execute_spec,
)
from .runset import RunRecord, RunSet
from .spec import (
    PolicySpec,
    RunSpec,
    TraceSpec,
    app,
    execute,
    inline,
    pcap,
    scheme,
    tcpdump,
    user,
)

__all__ = [
    "CacheStats",
    "CellRunSpec",
    "DiskCacheTier",
    "CellSpec",
    "Cohort",
    "DeviceArchetype",
    "DiurnalShape",
    "DormancySpec",
    "EmptyAxisError",
    "ExperimentPlan",
    "Metro",
    "MetroCell",
    "MetroResult",
    "MetroRunSpec",
    "MetroSpec",
    "PolicySpec",
    "Scenario",
    "PoolExecution",
    "ProcessPoolRunner",
    "ResultCache",
    "RunRecord",
    "RunSet",
    "RunSpec",
    "Runner",
    "SerialRunner",
    "TraceSpec",
    "app",
    "cell",
    "default_cache_dir",
    "default_runner",
    "dormancy",
    "execute",
    "execute_cell",
    "execute_cell_shard",
    "execute_metro",
    "execute_metro_cell_shard",
    "execute_spec",
    "get_metro",
    "get_scenario",
    "inline",
    "metro",
    "pcap",
    "plan",
    "scheme",
    "shard_sizes",
    "tcpdump",
    "user",
]
