"""The fluent, immutable :class:`ExperimentPlan` builder.

Every result in the paper's evaluation is a sweep over the same axes —
workload × carrier × policy, sometimes repeated over seeds.  A plan declares
those axes once and expands them into the full grid of
:class:`~repro.api.spec.RunSpec` cells::

    from repro.api import plan

    p = (plan()
         .apps("email", "im", duration=1800.0)
         .carriers("att_hspa", "verizon_lte")
         .policies("status_quo", "makeidle", "oracle")
         .window_size(100)
         .repeat(seeds=(0, 1)))
    specs = p.build()          # 2 apps x 2 carriers x 3 policies x 2 seeds = 24

Plans are frozen dataclasses: every fluent method returns a *new* plan, so a
partially built plan can be reused as a template.  A plan never runs
anything itself — hand it to a :class:`~repro.api.runner.SerialRunner` or
:class:`~repro.api.runner.ProcessPoolRunner` to obtain a
:class:`~repro.api.runset.RunSet`.

Plans round-trip through plain dicts (:meth:`ExperimentPlan.to_dict` /
:meth:`ExperimentPlan.from_dict`); :mod:`repro.config` builds JSON file
persistence on top of that so a sweep is reproducible from a config file.

A plan can instead sweep *device populations* against a base station: the
cell axes (:meth:`ExperimentPlan.cells` / :meth:`ExperimentPlan.dormancy`)
expand to :class:`~repro.api.cells.CellRunSpec` cells — population ×
carrier × device policy × dormancy policy — run by the same runners with
the same cache (see :mod:`repro.api.cells`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

from ..rrc.profiles import get_profile
from ..traces.packet import PacketTrace
from .cells import CellRunSpec, CellSpec, DormancySpec
from .metro import MetroRunSpec, MetroSpec, metro as metro_spec
from .spec import PolicySpec, RunSpec, TraceSpec, user as user_spec

__all__ = ["EmptyAxisError", "ExperimentPlan", "plan"]


class EmptyAxisError(ValueError):
    """Raised when a plan is expanded while one of its axes is still empty."""

    def __init__(self, axis: str) -> None:
        super().__init__(
            f"cannot expand an ExperimentPlan with an empty {axis} axis; "
            f"declare at least one entry with .{axis}(...)"
        )
        self.axis = axis


def _as_trace_spec(entry: TraceSpec | PacketTrace) -> TraceSpec:
    if isinstance(entry, TraceSpec):
        return entry
    if isinstance(entry, PacketTrace):
        return TraceSpec(kind="inline", trace=entry)
    raise TypeError(
        f"trace axis entries must be TraceSpec or PacketTrace, got {type(entry).__name__}"
    )


def _as_policy_spec(entry: PolicySpec | str) -> PolicySpec:
    if isinstance(entry, PolicySpec):
        return entry
    if isinstance(entry, str):
        return PolicySpec(scheme=entry)
    raise TypeError(
        f"policy axis entries must be PolicySpec or str, got {type(entry).__name__}"
    )


def _validated_shard_counts(counts: Iterable[int]) -> tuple[int, ...]:
    """Validate shard-count axis entries (shared by .shards and from_dict)."""
    validated = []
    for count in counts:
        if not isinstance(count, int) or isinstance(count, bool):
            raise TypeError(
                f"shard counts must be int, got {type(count).__name__}"
            )
        if count < 1:
            raise ValueError(f"shard counts must be >= 1, got {count}")
        validated.append(count)
    return tuple(validated)


def _validated_engines(names: Iterable[str]) -> tuple[str, ...]:
    """Validate engine axis entries (shared by .engines and from_dict)."""
    validated = []
    for name in names:
        if not isinstance(name, str):
            raise TypeError(
                f"engine names must be str, got {type(name).__name__}"
            )
        if name not in ("scalar", "vector"):
            raise ValueError(
                f"engine must be 'scalar' or 'vector', got {name!r}"
            )
        validated.append(name)
    return tuple(validated)


def _as_dormancy_spec(entry: DormancySpec | str) -> DormancySpec:
    if isinstance(entry, DormancySpec):
        return entry
    if isinstance(entry, str):
        return DormancySpec(scheme=entry)
    raise TypeError(
        f"dormancy axis entries must be DormancySpec or str, "
        f"got {type(entry).__name__}"
    )


@dataclass(frozen=True)
class ExperimentPlan:
    """An immutable declaration of a sweep grid.

    Use the fluent methods (:meth:`traces`, :meth:`carriers`,
    :meth:`policies`, :meth:`repeat`, ...) rather than the constructor; each
    returns a new plan with that axis extended or replaced.
    """

    trace_specs: tuple[TraceSpec, ...] = ()
    carrier_keys: tuple[str, ...] = ()
    policy_specs: tuple[PolicySpec, ...] = ()
    seeds: tuple[int, ...] = ()
    default_window: int = 100
    name: str = ""
    cell_specs: tuple[CellSpec, ...] = ()
    dormancy_specs: tuple[DormancySpec, ...] = ()
    shard_counts: tuple[int, ...] = ()
    metro_specs: tuple[MetroSpec, ...] = ()
    engine_names: tuple[str, ...] = ()

    # -- axis declaration ------------------------------------------------------------

    def traces(self, *entries: TraceSpec | PacketTrace) -> "ExperimentPlan":
        """Append workload axis entries (:class:`TraceSpec` or concrete traces)."""
        new = tuple(_as_trace_spec(e) for e in entries)
        return replace(self, trace_specs=self.trace_specs + new)

    def apps(self, *names: str, duration: float = 3600.0,
             seed: int = 0) -> "ExperimentPlan":
        """Append one synthetic application workload per name."""
        new = tuple(
            TraceSpec(kind="application", name=n, duration_s=duration, seed=seed)
            for n in names
        )
        return replace(self, trace_specs=self.trace_specs + new)

    def users(self, population: str, users: Iterable[int] | None = None,
              hours_per_day: float = 2.0, seed: int = 0) -> "ExperimentPlan":
        """Append one synthetic user-day workload per user of ``population``.

        ``users=None`` selects the population's whole roster.
        """
        from ..traces.users import user_ids

        selected = tuple(users) if users is not None else user_ids(population)
        new = tuple(
            user_spec(population, uid, hours_per_day=hours_per_day, seed=seed)
            for uid in selected
        )
        return replace(self, trace_specs=self.trace_specs + new)

    def cells(self, *entries: CellSpec) -> "ExperimentPlan":
        """Append device-population axis entries (switches the plan to cell mode).

        A plan with a cell axis expands to :class:`CellRunSpec` cells —
        population × carrier × device policy × dormancy policy — instead of
        single-UE runs; the two workload axes are mutually exclusive.
        """
        for entry in entries:
            if not isinstance(entry, CellSpec):
                raise TypeError(
                    f"cell axis entries must be CellSpec, got {type(entry).__name__}"
                )
        return replace(self, cell_specs=self.cell_specs + tuple(entries))

    def scenarios(self, *entries: "Scenario | str", devices: int = 100,
                  duration: float = 900.0, seed: int = 0,
                  streaming: bool = True,
                  chunk_s: float = 300.0) -> "ExperimentPlan":
        """Append one scenario population per entry (switches to cell mode).

        Entries are :class:`~repro.scenarios.Scenario` values or preset
        names (``"uniform"``, ``"office_day"``, ``"evening_peak"``,
        ``"mixed_policy"``, ...); each becomes a ``devices``-strong
        :class:`CellSpec` carrying that scenario, so scenarios compose
        with ``.carriers()`` / ``.policies()`` / ``.dormancy()`` /
        ``.shards()`` / ``.repeat()`` exactly like any other cell axis
        entry.
        """
        from ..scenarios.presets import get_scenario
        from ..scenarios.scenario import Scenario

        specs = []
        for entry in entries:
            if isinstance(entry, str):
                entry = get_scenario(entry)
            elif not isinstance(entry, Scenario):
                raise TypeError(
                    "scenario axis entries must be Scenario or a preset "
                    f"name, got {type(entry).__name__}"
                )
            specs.append(
                CellSpec(
                    devices=devices, duration_s=duration, seed=seed,
                    streaming=streaming, chunk_s=chunk_s, scenario=entry,
                )
            )
        return self.cells(*specs)

    def metros(self, *entries: "MetroSpec | str", devices: int = 1000,
               duration: float = 3600.0, seed: int = 0,
               chunk_s: float = 300.0) -> "ExperimentPlan":
        """Append metro-population axis entries (switches to metro mode).

        Entries are :class:`~repro.api.metro.MetroSpec` values or preset
        topology names (``"commuter_2cell"``, ``"metro_4cell"``, ...);
        names become ``devices``-strong specs over ``duration`` seconds.
        Metro plans expand to :class:`MetroRunSpec` cells — metro ×
        carrier × device policy × shards — and are mutually exclusive
        with the single-UE and cell axes.  There is no dormancy axis:
        station policies belong to the metro's cells.
        """
        specs = []
        for entry in entries:
            if isinstance(entry, str):
                entry = metro_spec(entry, devices=devices, duration=duration,
                                   seed=seed, chunk_s=chunk_s)
            elif not isinstance(entry, MetroSpec):
                raise TypeError(
                    "metro axis entries must be MetroSpec or a preset "
                    f"name, got {type(entry).__name__}"
                )
            specs.append(entry)
        return replace(self, metro_specs=self.metro_specs + tuple(specs))

    def dormancy(self, *entries: DormancySpec | str) -> "ExperimentPlan":
        """Append base-station dormancy axis entries (cell mode only).

        Entries are scheme names (``"accept_all"``, ``"reject_all"``,
        ``"rate_limited"``, ``"load_aware"``) or :class:`DormancySpec`s;
        cell plans without this axis default to the paper's always-accept
        assumption.
        """
        new = tuple(_as_dormancy_spec(e) for e in entries)
        return replace(self, dormancy_specs=self.dormancy_specs + new)

    def shards(self, *counts: int) -> "ExperimentPlan":
        """Append shard-count axis entries (cell mode only).

        Each entry runs every cell of the grid partitioned into that many
        device shards — ``1`` is the single-process reference; higher
        counts let :class:`~repro.api.runner.ProcessPoolRunner` execute
        one cell across several worker processes.  Per-device results are
        byte-identical across shard counts for shard-independent dormancy
        policies (``load_aware`` partitions its budget; see
        ``docs/DESIGN.md``), so sweeping several counts is mainly useful
        for benchmarking the execution path itself.
        """
        return replace(
            self,
            shard_counts=self.shard_counts + _validated_shard_counts(counts),
        )

    def engines(self, *names: str) -> "ExperimentPlan":
        """Append kernel-backend axis entries (cell and metro plans only).

        Entries are ``"scalar"`` (the per-event reference kernel) or
        ``"vector"`` (the numpy batch backend).  Both produce
        byte-identical results and share cache entries, so sweeping both
        is mainly useful for benchmarking and cross-checking the
        execution path itself; plans without this axis run each
        population with the engine its spec declares (``"scalar"`` by
        default).
        """
        return replace(
            self, engine_names=self.engine_names + _validated_engines(names)
        )

    def carriers(self, *keys: str) -> "ExperimentPlan":
        """Append carrier axis entries (keys or aliases, validated eagerly)."""
        normalized = tuple(get_profile(k).key for k in keys)
        return replace(self, carrier_keys=self.carrier_keys + normalized)

    def policies(self, *entries: PolicySpec | str) -> "ExperimentPlan":
        """Append policy axis entries (scheme names or :class:`PolicySpec`)."""
        new = tuple(_as_policy_spec(e) for e in entries)
        return replace(self, policy_specs=self.policy_specs + new)

    #: ``schemes`` reads more naturally when entries are plain scheme names.
    schemes = policies

    def repeat(self, seeds: Sequence[int]) -> "ExperimentPlan":
        """Repeat the whole grid once per seed, re-seeding generated workloads."""
        return replace(self, seeds=tuple(seeds))

    def window_size(self, n: int) -> "ExperimentPlan":
        """Set the MakeIdle window used by policies that did not fix their own."""
        if n < 2:
            raise ValueError(f"window_size must be >= 2, got {n}")
        return replace(self, default_window=n)

    def labelled(self, name: str) -> "ExperimentPlan":
        """Attach a human-readable name (kept through serialisation)."""
        return replace(self, name=name)

    # -- expansion -------------------------------------------------------------------

    @property
    def is_cell_plan(self) -> bool:
        """Whether this plan sweeps device populations instead of single UEs."""
        return bool(self.cell_specs)

    @property
    def is_metro_plan(self) -> bool:
        """Whether this plan sweeps metro topologies."""
        return bool(self.metro_specs)

    def __len__(self) -> int:
        """Grid size: workloads x carriers x policies (x dormancy x shards) x seeds."""
        repetitions = len(self.seeds) if self.seeds else 1
        engines = len(self.engine_names) if self.engine_names else 1
        if self.is_metro_plan:
            shards = len(self.shard_counts) if self.shard_counts else 1
            return (len(self.metro_specs) * len(self.carrier_keys)
                    * len(self.policy_specs) * shards * engines * repetitions)
        if self.is_cell_plan:
            dormancy = len(self.dormancy_specs) if self.dormancy_specs else 1
            shards = len(self.shard_counts) if self.shard_counts else 1
            return (len(self.cell_specs) * len(self.carrier_keys)
                    * len(self.policy_specs) * dormancy * shards * engines
                    * repetitions)
        return (len(self.trace_specs) * len(self.carrier_keys)
                * len(self.policy_specs) * repetitions)

    def build(
        self,
    ) -> tuple[RunSpec, ...] | tuple[CellRunSpec, ...] | tuple[MetroRunSpec, ...]:
        """Expand the plan into its full grid of run specs.

        Expansion order is deterministic — seed, then workload, then
        carrier, then policy (then dormancy for cell plans, shards for
        cell and metro plans) — so two builds of the same plan yield the
        same sequence.  A plan with a metro axis yields
        :class:`MetroRunSpec` cells, one with a cell axis
        :class:`CellRunSpec` cells; otherwise :class:`RunSpec`s.
        """
        if self.is_metro_plan:
            return self._build_metros()
        if self.is_cell_plan:
            return self._build_cells()
        if self.dormancy_specs:
            raise ValueError(
                "a dormancy axis only applies to cell plans; declare a "
                "device population with .cells(...) or drop .dormancy(...)"
            )
        if self.shard_counts:
            raise ValueError(
                "a shards axis only applies to cell plans; declare a "
                "device population with .cells(...) or drop .shards(...)"
            )
        if self.engine_names:
            raise ValueError(
                "an engines axis only applies to cell and metro plans; "
                "declare a device population with .cells(...) or "
                ".metros(...) or drop .engines(...)"
            )
        if not self.trace_specs:
            raise EmptyAxisError("traces")
        if not self.carrier_keys:
            raise EmptyAxisError("carriers")
        if not self.policy_specs:
            raise EmptyAxisError("policies")
        seeds: Sequence[int | None] = self.seeds if self.seeds else (None,)
        specs: list[RunSpec] = []
        for seed in seeds:
            for trace in self.trace_specs:
                seeded = trace if seed is None else trace.with_seed(seed)
                run_seed = seed if seed is not None else trace.seed
                for carrier in self.carrier_keys:
                    for policy in self.policy_specs:
                        specs.append(
                            RunSpec(
                                trace=seeded,
                                carrier=carrier,
                                policy=policy.resolved(self.default_window),
                                seed=run_seed,
                            )
                        )
        return tuple(specs)

    def _build_cells(self) -> tuple[CellRunSpec, ...]:
        if self.trace_specs:
            raise ValueError(
                "a plan cannot mix single-UE trace axes with a cell axis; "
                "declare one workload kind per plan"
            )
        if not self.carrier_keys:
            raise EmptyAxisError("carriers")
        if not self.policy_specs:
            raise EmptyAxisError("policies")
        dormancy = self.dormancy_specs if self.dormancy_specs else (DormancySpec(),)
        shard_counts = self.shard_counts if self.shard_counts else (1,)
        # No engines axis: run each population with its spec's own engine.
        engines: Sequence[str | None] = (
            self.engine_names if self.engine_names else (None,)
        )
        seeds: Sequence[int | None] = self.seeds if self.seeds else (None,)
        specs: list[CellRunSpec] = []
        for seed in seeds:
            for cell in self.cell_specs:
                seeded = cell if seed is None else cell.with_seed(seed)
                run_seed = seed if seed is not None else cell.seed
                for carrier in self.carrier_keys:
                    for policy in self.policy_specs:
                        for station in dormancy:
                            for shards in shard_counts:
                                for engine in engines:
                                    specs.append(
                                        CellRunSpec(
                                            cell=(
                                                seeded if engine is None
                                                else replace(
                                                    seeded, engine=engine
                                                )
                                            ),
                                            carrier=carrier,
                                            policy=policy.resolved(
                                                self.default_window
                                            ),
                                            dormancy=station,
                                            seed=run_seed,
                                            shards=shards,
                                        )
                                    )
        return tuple(specs)

    def _build_metros(self) -> tuple[MetroRunSpec, ...]:
        if self.trace_specs or self.cell_specs:
            raise ValueError(
                "a plan cannot mix a metro axis with single-UE trace or "
                "cell axes; declare one workload kind per plan"
            )
        if self.dormancy_specs:
            raise ValueError(
                "a dormancy axis does not apply to metro plans: station "
                "policies belong to the metro's cells (MetroCell.dormancy)"
            )
        if not self.carrier_keys:
            raise EmptyAxisError("carriers")
        if not self.policy_specs:
            raise EmptyAxisError("policies")
        shard_counts = self.shard_counts if self.shard_counts else (1,)
        engines: Sequence[str | None] = (
            self.engine_names if self.engine_names else (None,)
        )
        seeds: Sequence[int | None] = self.seeds if self.seeds else (None,)
        specs: list[MetroRunSpec] = []
        for seed in seeds:
            for entry in self.metro_specs:
                seeded = entry if seed is None else entry.with_seed(seed)
                run_seed = seed if seed is not None else entry.seed
                for carrier in self.carrier_keys:
                    for policy in self.policy_specs:
                        for shards in shard_counts:
                            for engine in engines:
                                specs.append(
                                    MetroRunSpec(
                                        metro=(
                                            seeded if engine is None
                                            else replace(seeded, engine=engine)
                                        ),
                                        carrier=carrier,
                                        policy=policy.resolved(
                                            self.default_window
                                        ),
                                        seed=run_seed,
                                        shards=shards,
                                    )
                                )
        return tuple(specs)

    def describe(self) -> str:
        """One-line summary of the declared axes."""
        repetitions = len(self.seeds) if self.seeds else 1
        label = f"{self.name!r}: " if self.name else ""
        engines = (
            f" x {len(self.engine_names)} engine(s)"
            if self.engine_names else ""
        )
        if self.is_metro_plan:
            shards = (
                f" x {len(self.shard_counts)} shard count(s)"
                if self.shard_counts else ""
            )
            return (
                f"ExperimentPlan {label}{len(self.metro_specs)} metro(s) x "
                f"{len(self.carrier_keys)} carrier(s) x "
                f"{len(self.policy_specs)} policy(ies){shards}{engines} x "
                f"{repetitions} seed(s) = {len(self)} runs"
            )
        if self.is_cell_plan:
            dormancy = len(self.dormancy_specs) if self.dormancy_specs else 1
            shards = (
                f" x {len(self.shard_counts)} shard count(s)"
                if self.shard_counts else ""
            )
            return (
                f"ExperimentPlan {label}{len(self.cell_specs)} cell(s) x "
                f"{len(self.carrier_keys)} carrier(s) x "
                f"{len(self.policy_specs)} policy(ies) x "
                f"{dormancy} dormancy policy(ies){shards}{engines} x "
                f"{repetitions} seed(s) = {len(self)} runs"
            )
        return (
            f"ExperimentPlan {label}{len(self.trace_specs)} trace(s) x "
            f"{len(self.carrier_keys)} carrier(s) x "
            f"{len(self.policy_specs)} policy(ies) x {repetitions} seed(s) "
            f"= {len(self)} runs"
        )

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON (inline traces / factories refuse)."""
        data = {
            "name": self.name,
            "traces": [t.to_dict() for t in self.trace_specs],
            "carriers": list(self.carrier_keys),
            "policies": [p.to_dict() for p in self.policy_specs],
            "seeds": list(self.seeds),
            "window_size": self.default_window,
        }
        if self.cell_specs:
            data["cells"] = [c.to_dict() for c in self.cell_specs]
        if self.dormancy_specs:
            data["dormancy"] = [d.to_dict() for d in self.dormancy_specs]
        if self.shard_counts:
            data["shards"] = list(self.shard_counts)
        if self.metro_specs:
            data["metros"] = [m.to_dict() for m in self.metro_specs]
        if self.engine_names:
            data["engines"] = list(self.engine_names)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentPlan":
        """Re-create a plan from :meth:`to_dict` output."""
        return cls(
            trace_specs=tuple(
                TraceSpec.from_dict(t) for t in data.get("traces", ())
            ),
            carrier_keys=tuple(data.get("carriers", ())),
            policy_specs=tuple(
                PolicySpec.from_dict(p) for p in data.get("policies", ())
            ),
            seeds=tuple(data.get("seeds", ())),
            default_window=int(data.get("window_size", 100)),
            name=str(data.get("name", "")),
            cell_specs=tuple(
                CellSpec.from_dict(c) for c in data.get("cells", ())
            ),
            dormancy_specs=tuple(
                DormancySpec.from_dict(d) for d in data.get("dormancy", ())
            ),
            shard_counts=_validated_shard_counts(data.get("shards", ())),
            metro_specs=tuple(
                MetroSpec.from_dict(m) for m in data.get("metros", ())
            ),
            engine_names=_validated_engines(data.get("engines", ())),
        )


def plan() -> ExperimentPlan:
    """Start a fresh, empty :class:`ExperimentPlan`."""
    return ExperimentPlan()
