"""The fluent, immutable :class:`ExperimentPlan` builder.

Every result in the paper's evaluation is a sweep over the same axes —
workload × carrier × policy, sometimes repeated over seeds.  A plan declares
those axes once and expands them into the full grid of
:class:`~repro.api.spec.RunSpec` cells::

    from repro.api import plan

    p = (plan()
         .apps("email", "im", duration=1800.0)
         .carriers("att_hspa", "verizon_lte")
         .policies("status_quo", "makeidle", "oracle")
         .window_size(100)
         .repeat(seeds=(0, 1)))
    specs = p.build()          # 2 apps x 2 carriers x 3 policies x 2 seeds = 24

Plans are frozen dataclasses: every fluent method returns a *new* plan, so a
partially built plan can be reused as a template.  A plan never runs
anything itself — hand it to a :class:`~repro.api.runner.SerialRunner` or
:class:`~repro.api.runner.ProcessPoolRunner` to obtain a
:class:`~repro.api.runset.RunSet`.

Plans round-trip through plain dicts (:meth:`ExperimentPlan.to_dict` /
:meth:`ExperimentPlan.from_dict`); :mod:`repro.config` builds JSON file
persistence on top of that so a sweep is reproducible from a config file.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Sequence

from ..rrc.profiles import get_profile
from ..traces.packet import PacketTrace
from .spec import PolicySpec, RunSpec, TraceSpec, user as user_spec

__all__ = ["EmptyAxisError", "ExperimentPlan", "plan"]


class EmptyAxisError(ValueError):
    """Raised when a plan is expanded while one of its axes is still empty."""

    def __init__(self, axis: str) -> None:
        super().__init__(
            f"cannot expand an ExperimentPlan with an empty {axis} axis; "
            f"declare at least one entry with .{axis}(...)"
        )
        self.axis = axis


def _as_trace_spec(entry: TraceSpec | PacketTrace) -> TraceSpec:
    if isinstance(entry, TraceSpec):
        return entry
    if isinstance(entry, PacketTrace):
        return TraceSpec(kind="inline", trace=entry)
    raise TypeError(
        f"trace axis entries must be TraceSpec or PacketTrace, got {type(entry).__name__}"
    )


def _as_policy_spec(entry: PolicySpec | str) -> PolicySpec:
    if isinstance(entry, PolicySpec):
        return entry
    if isinstance(entry, str):
        return PolicySpec(scheme=entry)
    raise TypeError(
        f"policy axis entries must be PolicySpec or str, got {type(entry).__name__}"
    )


@dataclass(frozen=True)
class ExperimentPlan:
    """An immutable declaration of a sweep grid.

    Use the fluent methods (:meth:`traces`, :meth:`carriers`,
    :meth:`policies`, :meth:`repeat`, ...) rather than the constructor; each
    returns a new plan with that axis extended or replaced.
    """

    trace_specs: tuple[TraceSpec, ...] = ()
    carrier_keys: tuple[str, ...] = ()
    policy_specs: tuple[PolicySpec, ...] = ()
    seeds: tuple[int, ...] = ()
    default_window: int = 100
    name: str = ""

    # -- axis declaration ------------------------------------------------------------

    def traces(self, *entries: TraceSpec | PacketTrace) -> "ExperimentPlan":
        """Append workload axis entries (:class:`TraceSpec` or concrete traces)."""
        new = tuple(_as_trace_spec(e) for e in entries)
        return replace(self, trace_specs=self.trace_specs + new)

    def apps(self, *names: str, duration: float = 3600.0,
             seed: int = 0) -> "ExperimentPlan":
        """Append one synthetic application workload per name."""
        new = tuple(
            TraceSpec(kind="application", name=n, duration_s=duration, seed=seed)
            for n in names
        )
        return replace(self, trace_specs=self.trace_specs + new)

    def users(self, population: str, users: Iterable[int] | None = None,
              hours_per_day: float = 2.0, seed: int = 0) -> "ExperimentPlan":
        """Append one synthetic user-day workload per user of ``population``.

        ``users=None`` selects the population's whole roster.
        """
        from ..traces.users import user_ids

        selected = tuple(users) if users is not None else user_ids(population)
        new = tuple(
            user_spec(population, uid, hours_per_day=hours_per_day, seed=seed)
            for uid in selected
        )
        return replace(self, trace_specs=self.trace_specs + new)

    def carriers(self, *keys: str) -> "ExperimentPlan":
        """Append carrier axis entries (keys or aliases, validated eagerly)."""
        normalized = tuple(get_profile(k).key for k in keys)
        return replace(self, carrier_keys=self.carrier_keys + normalized)

    def policies(self, *entries: PolicySpec | str) -> "ExperimentPlan":
        """Append policy axis entries (scheme names or :class:`PolicySpec`)."""
        new = tuple(_as_policy_spec(e) for e in entries)
        return replace(self, policy_specs=self.policy_specs + new)

    #: ``schemes`` reads more naturally when entries are plain scheme names.
    schemes = policies

    def repeat(self, seeds: Sequence[int]) -> "ExperimentPlan":
        """Repeat the whole grid once per seed, re-seeding generated workloads."""
        return replace(self, seeds=tuple(seeds))

    def window_size(self, n: int) -> "ExperimentPlan":
        """Set the MakeIdle window used by policies that did not fix their own."""
        if n < 2:
            raise ValueError(f"window_size must be >= 2, got {n}")
        return replace(self, default_window=n)

    def labelled(self, name: str) -> "ExperimentPlan":
        """Attach a human-readable name (kept through serialisation)."""
        return replace(self, name=name)

    # -- expansion -------------------------------------------------------------------

    def __len__(self) -> int:
        """Grid size: traces x carriers x policies x seed repetitions."""
        repetitions = len(self.seeds) if self.seeds else 1
        return (len(self.trace_specs) * len(self.carrier_keys)
                * len(self.policy_specs) * repetitions)

    def build(self) -> tuple[RunSpec, ...]:
        """Expand the plan into its full grid of :class:`RunSpec` cells.

        Expansion order is deterministic — seed, then trace, then carrier,
        then policy — so two builds of the same plan yield the same sequence.
        """
        if not self.trace_specs:
            raise EmptyAxisError("traces")
        if not self.carrier_keys:
            raise EmptyAxisError("carriers")
        if not self.policy_specs:
            raise EmptyAxisError("policies")
        seeds: Sequence[int | None] = self.seeds if self.seeds else (None,)
        specs: list[RunSpec] = []
        for seed in seeds:
            for trace in self.trace_specs:
                seeded = trace if seed is None else trace.with_seed(seed)
                run_seed = seed if seed is not None else trace.seed
                for carrier in self.carrier_keys:
                    for policy in self.policy_specs:
                        specs.append(
                            RunSpec(
                                trace=seeded,
                                carrier=carrier,
                                policy=policy.resolved(self.default_window),
                                seed=run_seed,
                            )
                        )
        return tuple(specs)

    def describe(self) -> str:
        """One-line summary of the declared axes."""
        repetitions = len(self.seeds) if self.seeds else 1
        label = f"{self.name!r}: " if self.name else ""
        return (
            f"ExperimentPlan {label}{len(self.trace_specs)} trace(s) x "
            f"{len(self.carrier_keys)} carrier(s) x "
            f"{len(self.policy_specs)} policy(ies) x {repetitions} seed(s) "
            f"= {len(self)} runs"
        )

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON (inline traces / factories refuse)."""
        return {
            "name": self.name,
            "traces": [t.to_dict() for t in self.trace_specs],
            "carriers": list(self.carrier_keys),
            "policies": [p.to_dict() for p in self.policy_specs],
            "seeds": list(self.seeds),
            "window_size": self.default_window,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentPlan":
        """Re-create a plan from :meth:`to_dict` output."""
        return cls(
            trace_specs=tuple(
                TraceSpec.from_dict(t) for t in data.get("traces", ())
            ),
            carrier_keys=tuple(data.get("carriers", ())),
            policy_specs=tuple(
                PolicySpec.from_dict(p) for p in data.get("policies", ())
            ),
            seeds=tuple(data.get("seeds", ())),
            default_window=int(data.get("window_size", 100)),
            name=str(data.get("name", "")),
        )


def plan() -> ExperimentPlan:
    """Start a fresh, empty :class:`ExperimentPlan`."""
    return ExperimentPlan()
