"""Structured results of an executed plan: :class:`RunRecord` and :class:`RunSet`.

A runner turns every :class:`~repro.api.spec.RunSpec` of a plan into a
:class:`RunRecord` — the spec, its full
:class:`~repro.sim.results.SimulationResult`, and whether the result came
out of the cache.  The :class:`RunSet` wraps the ordered record sequence
with the operations every consumer of a sweep needs:

* axis filtering (:meth:`RunSet.only`, :meth:`RunSet.filter`) and grouping
  (:meth:`RunSet.group_by`);
* normalising each scheme against the status-quo baseline of its own
  (trace, carrier, seed) cell (:meth:`RunSet.savings`), reusing the
  :class:`~repro.metrics.savings.SavingsReport` machinery;
* flat export for storage and plotting (:meth:`RunSet.iter_records`,
  :meth:`RunSet.to_records`, :meth:`RunSet.to_csv`, :meth:`RunSet.to_json`,
  :meth:`RunSet.to_npz`, and — when pyarrow is installed —
  :meth:`RunSet.to_parquet`).

All of these work on the *aggregate* columns of the underlying results:
cell- and metro-scale records sit on the columnar
:class:`~repro.basestation.table.DeviceTable`, whose totals are computed
by array reductions, so exporting a million-device sweep never
materialises a million per-device row objects (see DESIGN.md §5).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence, Union

from ..basestation.cell import CellResult
from ..metrics.savings import SavingsReport, compare
from ..metro.execution import MetroResult
from ..sim.results import SimulationResult
from .cache import CacheStats
from .cells import CellRunSpec
from .metro import MetroRunSpec
from .spec import RunSpec

__all__ = ["RunRecord", "RunSet"]

#: Scheme name of the normalisation baseline used throughout the paper.
BASELINE_SCHEME = "status_quo"


@dataclass(frozen=True)
class RunRecord:
    """One executed grid cell: its spec, its result, and its provenance.

    A record is a single-UE run (:class:`RunSpec` →
    :class:`SimulationResult`), a cell-scale run (:class:`CellRunSpec` →
    :class:`~repro.basestation.cell.CellResult`) or a metro-scale run
    (:class:`MetroRunSpec` → :class:`~repro.metro.execution.MetroResult`);
    :attr:`is_cell` / :attr:`is_metro` distinguish them, and the axis
    accessors work uniformly on all three.
    """

    spec: Union[RunSpec, CellRunSpec, MetroRunSpec]
    result: Union[SimulationResult, CellResult, MetroResult]
    from_cache: bool = False

    @property
    def is_cell(self) -> bool:
        """Whether this record is a cell-scale run."""
        return isinstance(self.spec, CellRunSpec)

    @property
    def is_metro(self) -> bool:
        """Whether this record is a metro-scale run."""
        return isinstance(self.spec, MetroRunSpec)

    @property
    def trace_label(self) -> str:
        """The workload axis value (application, population:user, cell label...)."""
        if isinstance(self.spec, (CellRunSpec, MetroRunSpec)):
            return self.spec.label
        return self.spec.trace.label

    @property
    def carrier(self) -> str:
        """The carrier axis value."""
        return self.spec.carrier

    @property
    def scheme(self) -> str:
        """The (device-side) policy axis value."""
        return self.spec.scheme

    @property
    def dormancy(self) -> str:
        """The base-station dormancy axis value.

        ``""`` for single-UE runs and for metro runs — metro station
        policies are per-cell topology properties, not an axis (see the
        per-cell ``dormancy`` entries in :meth:`RunSet.to_records`).
        """
        if isinstance(self.spec, CellRunSpec):
            return self.spec.dormancy.label
        return ""

    @property
    def seed(self) -> int:
        """The repetition seed this record belongs to."""
        return self.spec.seed

    @property
    def shards(self) -> int:
        """The shard count that actually executed (1 for single-UE runs).

        The *effective* count — a requested count beyond the device
        population clamps down — so rows never claim an execution
        precision (budget partition, peak estimate) that never ran, and
        clamped-identical runs share one comparison group, matching the
        cache key.
        """
        if isinstance(self.spec, (CellRunSpec, MetroRunSpec)):
            return self.spec.effective_shards
        return 1

    @property
    def engine(self) -> str:
        """The kernel backend the spec selected (``"scalar"`` for single-UE).

        The *requested* backend — per-UE scalar fallback inside a vector
        run is reported by the result's ``vector_devices`` counter, and a
        cache hit may carry a result computed by the other backend (the
        two are byte-identical, so the cache is shared).
        """
        if isinstance(self.spec, CellRunSpec):
            return self.spec.cell.engine
        if isinstance(self.spec, MetroRunSpec):
            return self.spec.metro.engine
        return "scalar"

    @property
    def group_key(self) -> tuple:
        """The cell this record's schemes compete in.

        ``(trace, carrier, seed)`` for single-UE runs; cell-scale runs add
        the dormancy policy and the shard count — schemes are only
        comparable under the same base-station behaviour and the same
        execution precision (sharding changes ``load_aware`` arbitration
        and the peak-active estimate).  Metro runs add the shard count
        only (their station policies live in the topology, which is part
        of the label).
        """
        if self.is_cell:
            return (self.trace_label, self.carrier, self.dormancy,
                    self.shards, self.seed)
        if self.is_metro:
            return (self.trace_label, self.carrier, self.shards, self.seed)
        return (self.trace_label, self.carrier, self.seed)


class RunSet(Sequence[RunRecord]):
    """The ordered, immutable results of one executed plan."""

    def __init__(self, records: Sequence[RunRecord],
                 cache_stats: CacheStats | None = None,
                 execution: Any | None = None) -> None:
        self._records: tuple[RunRecord, ...] = tuple(records)
        self._cache_stats = cache_stats
        self._execution = execution

    # -- sequence protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return RunSet(self._records[index], self._cache_stats,
                          self._execution)
        return self._records[index]

    def __repr__(self) -> str:
        stats = f" cache={self._cache_stats!r}" if self._cache_stats else ""
        return f"<RunSet records={len(self)}{stats}>"

    @property
    def records(self) -> tuple[RunRecord, ...]:
        """The underlying record tuple, in plan expansion order."""
        return self._records

    @property
    def cache_stats(self) -> CacheStats | None:
        """Cache counters observed by the runner over this execution, if any."""
        return self._cache_stats

    @property
    def execution(self) -> Any | None:
        """How the runner executed this set, if it recorded it.

        A :class:`~repro.api.runner.PoolExecution` for pool-backed runs —
        carrying the requested vs. effective (core-clamped) worker count
        and whether a pool was actually used — ``None`` for serial
        backends.  Surfaced as ``pool_jobs`` / ``pool_clamped`` columns by
        :meth:`to_records` so exported cell rows state the clamp.
        """
        return self._execution

    # -- filtering and grouping ------------------------------------------------------

    def only(self, trace: str | None = None, carrier: str | None = None,
             scheme: str | None = None, seed: int | None = None) -> "RunSet":
        """The sub-set of records matching every given axis value."""
        selected = tuple(
            r for r in self._records
            if (trace is None or r.trace_label == trace)
            and (carrier is None or r.carrier == carrier)
            and (scheme is None or r.scheme == scheme)
            and (seed is None or r.seed == seed)
        )
        return RunSet(selected, self._cache_stats, self._execution)

    #: Axis name → record accessor, shared by group_by()/filter().
    _AXIS_GETTERS = {
        "trace": lambda r: r.trace_label,
        "carrier": lambda r: r.carrier,
        "scheme": lambda r: r.scheme,
        "dormancy": lambda r: r.dormancy,
        "shards": lambda r: r.shards,
        "engine": lambda r: r.engine,
        "seed": lambda r: r.seed,
    }

    def group_by(self, *axes: str) -> dict[Any, "RunSet"]:
        """Partition the records by one or more axes.

        ``axes`` entries are ``"trace"``, ``"carrier"``, ``"scheme"``,
        ``"dormancy"``, ``"shards"``, ``"engine"`` or ``"seed"``.  With
        one axis the dict is keyed by
        that axis value; with several, by the tuple of values.  Insertion
        order follows the record order, so iterating the groups preserves
        the plan's axis order.
        """
        getters = self._AXIS_GETTERS
        unknown = [a for a in axes if a not in getters]
        if unknown or not axes:
            raise ValueError(
                f"group_by axes must be among {sorted(getters)}, got {list(axes)}"
            )
        grouped: dict[Any, list[RunRecord]] = {}
        for record in self._records:
            values = tuple(getters[a](record) for a in axes)
            key = values[0] if len(axes) == 1 else values
            grouped.setdefault(key, []).append(record)
        return {k: RunSet(v, self._cache_stats, self._execution)
                for k, v in grouped.items()}

    def filter(self, predicate: Any = None, **axes: Any) -> "RunSet":
        """Records matching every axis keyword and the optional predicate.

        Axis keywords are the :meth:`group_by` names (``trace="im"``,
        ``scheme="makeidle"``, ``shards=4`` ...) and compare by equality;
        ``predicate`` is an arbitrary ``RunRecord -> bool`` callable for
        anything the axes cannot express (e.g. ``lambda r:
        r.result.total_energy_j < 50``).  A generalisation of
        :meth:`only` — axis comparisons look only at spec metadata, so
        filtering never touches result payloads unless the predicate does.
        """
        getters = self._AXIS_GETTERS
        unknown = [a for a in axes if a not in getters]
        if unknown:
            raise ValueError(
                f"filter axes must be among {sorted(getters)}, got {unknown}"
            )
        selected = tuple(
            r for r in self._records
            if all(getters[a](r) == v for a, v in axes.items())
            and (predicate is None or predicate(r))
        )
        return RunSet(selected, self._cache_stats, self._execution)

    # -- baseline normalisation ------------------------------------------------------

    def baseline_for(self, record: RunRecord,
                     baseline_scheme: str = BASELINE_SCHEME) -> RunRecord | None:
        """The baseline record sharing ``record``'s (trace, carrier, seed) cell."""
        for candidate in self._records:
            if (candidate.scheme == baseline_scheme
                    and candidate.group_key == record.group_key):
                return candidate
        return None

    def savings(self, baseline_scheme: str = BASELINE_SCHEME,
                ) -> dict[tuple, dict[str, SavingsReport]]:
        """Per-cell savings of every scheme against that cell's baseline run.

        Returns ``{(trace, carrier, seed): {scheme: SavingsReport}}``; cells
        without a baseline record raise, since the comparison the paper makes
        is undefined without a status-quo run on the same trace and carrier.
        Single-UE records only — for cell sweeps use :meth:`to_records`,
        whose rows carry ``denial_rate``, ``peak_switches_per_minute`` and
        ``saved_percent`` against the same group's baseline scheme.
        """
        if any(r.is_cell or r.is_metro for r in self._records):
            raise TypeError(
                "savings() builds per-run SavingsReports for single-UE "
                "sweeps; cell- and metro-scale records aggregate via "
                "to_records()"
            )
        table: dict[tuple, dict[str, SavingsReport]] = {}
        for cell_key, cell in self.group_by("trace", "carrier", "seed").items():
            baseline = next(
                (r for r in cell if r.scheme == baseline_scheme), None
            )
            if baseline is None:
                raise ValueError(
                    f"no {baseline_scheme!r} record for cell {cell_key}; "
                    "include the baseline scheme in the plan's policy axis"
                )
            table[cell_key] = {
                r.scheme: compare(r.result, baseline.result)
                for r in cell
                if r.scheme != baseline_scheme
            }
        return table

    # -- export ----------------------------------------------------------------------

    @staticmethod
    def _cohort_rows(result: CellResult,
                     baseline: RunRecord | None) -> dict[str, dict[str, Any]]:
        """Per-cohort breakdown dicts of one scenario cell record.

        Empty (falsy) for homogeneous populations.  When the group's
        baseline record exists and carries the same cohort label, each
        cohort entry also gets a ``saved_percent`` against that cohort of
        the baseline — the per-cohort view of the paper's headline metric.
        Note the comparison is *axis vs axis*: a cohort whose policy is
        pinned by a scenario override runs that override in the baseline
        record too, so its ``saved_percent`` is ~0 by construction —
        which is exactly the mixed-policy reading (pinned cohorts don't
        move with the axis; only un-overridden cohorts swing).
        """
        labels = result.cohorts()
        if not labels:
            return {}
        breakdown = result.cohort_breakdown()
        base_breakdown = (
            baseline.result.cohort_breakdown()
            if baseline is not None and isinstance(baseline.result, CellResult)
            else {}
        )
        rows: dict[str, dict[str, Any]] = {}
        for label in labels:
            entry = breakdown[label].as_dict()
            base = base_breakdown.get(label)
            if base is not None and base.energy_j > 0:
                entry["saved_percent"] = 100.0 * (
                    (base.energy_j - breakdown[label].energy_j) / base.energy_j
                )
            rows[label] = entry
        return rows

    def _metro_cell_rows(self, result: MetroResult,
                         baseline: RunRecord | None) -> dict[str, dict[str, Any]]:
        """Per-cell breakdown dicts of one metro record, keyed by cell name.

        Each cell entry carries its own station policy, load and
        handover counts — plus ``saved_percent`` against the *same cell*
        of the group's baseline record when one exists, and the cell's
        per-cohort rows (:meth:`_cohort_rows`) when its population is
        scenario-homed.
        """
        base_cells = (
            {entry.name: entry for entry in baseline.result.cells}
            if baseline is not None and isinstance(baseline.result, MetroResult)
            else {}
        )
        rows: dict[str, dict[str, Any]] = {}
        for entry in result.cells:
            cell_result = entry.result
            row: dict[str, Any] = {
                "dormancy": entry.dormancy,
                "capacity": entry.capacity,
                "visits": entry.visits,
                "departures": entry.departures,
                "arrivals": entry.arrivals,
                "energy_j": cell_result.total_energy_j,
                "switch_count": cell_result.total_switches,
                "rrc_messages": cell_result.signaling.messages,
                "dormancy_requests": cell_result.dormancy_requests,
                "denial_rate": cell_result.denial_rate,
                "peak_active_devices": cell_result.peak_active_devices,
            }
            if entry.utilization is not None:
                row["utilization"] = entry.utilization
            base = base_cells.get(entry.name)
            if base is not None and base.result.total_energy_j > 0:
                row["saved_percent"] = 100.0 * (
                    (base.result.total_energy_j - cell_result.total_energy_j)
                    / base.result.total_energy_j
                )
            cohorts = self._metro_cohort_rows(
                cell_result, base.result if base is not None else None
            )
            if cohorts:
                row["cohorts"] = cohorts
            rows[entry.name] = row
        return rows

    @staticmethod
    def _metro_cohort_rows(
        cell_result: CellResult, base_result: CellResult | None
    ) -> dict[str, dict[str, Any]]:
        """Cohort rows of one metro cell, normalised against the baseline cell."""
        if not cell_result.cohorts():
            return {}
        breakdown = cell_result.cohort_breakdown()
        base_breakdown = (
            base_result.cohort_breakdown() if base_result is not None else {}
        )
        rows: dict[str, dict[str, Any]] = {}
        for label in cell_result.cohorts():
            entry = breakdown[label].as_dict()
            base = base_breakdown.get(label)
            if base is not None and base.energy_j > 0:
                entry["saved_percent"] = 100.0 * (
                    (base.energy_j - breakdown[label].energy_j) / base.energy_j
                )
            rows[label] = entry
        return rows

    def iter_records(self, baseline_scheme: str | None = BASELINE_SCHEME,
                     ) -> Iterator[dict[str, Any]]:
        """Yield the flat record dicts of :meth:`to_records` lazily.

        One row is materialised at a time, so streaming a large sweep to
        an incremental writer holds a single row's worth of dicts rather
        than the whole flattened table.  The baseline index is built
        upfront from spec metadata only.

        When ``baseline_scheme`` is given and the matching baseline record
        exists in the set, each row also carries ``saved_percent`` and
        ``switches_normalized`` against it; pass ``None`` to skip
        normalisation entirely.  Cell-scale records additionally carry the
        base-station aggregates: ``dormancy``, ``shards``, ``devices``,
        ``dormancy_requests``, ``denial_rate``, ``peak_active_devices`` and
        ``peak_switches_per_minute``.  Records whose spec selected a
        non-default kernel backend also carry ``engine``,
        ``vector_devices`` (devices the batch path actually executed) and
        ``fallback_devices`` (devices that fell back to the scalar
        kernel, e.g. for per-packet policy hooks).  Scenario cells (whose devices carry
        cohort labels) also carry ``cohorts``: a per-cohort
        energy/switch/denial breakdown keyed by cohort label, each entry
        normalised against the same cohort of the group's baseline record
        when one exists.
        """
        baselines: dict[tuple, RunRecord] = {}
        if baseline_scheme is not None:
            for record in self._records:
                if record.scheme == baseline_scheme:
                    baselines.setdefault(record.group_key, record)
        for record in self._records:
            result = record.result
            if record.is_metro:
                row = {
                    "trace": record.trace_label,
                    "carrier": record.carrier,
                    "scheme": record.scheme,
                    "shards": record.shards,
                    "seed": record.seed,
                    "devices": result.devices,
                    "n_cells": len(result.cells),
                    "handovers": result.handovers,
                    "duration_s": result.duration_s,
                    "energy_j": result.total_energy_j,
                    "switch_count": result.total_switches,
                    "rrc_messages": result.total_messages,
                    "dormancy_requests": result.dormancy_requests,
                    "denial_rate": result.denial_rate,
                    "from_cache": record.from_cache,
                }
                if record.engine != "scalar":
                    row["engine"] = record.engine
                    vector_visits = sum(
                        entry.result.vector_devices for entry in result.cells
                    )
                    row["vector_devices"] = vector_visits
                    row["fallback_devices"] = sum(
                        entry.visits for entry in result.cells
                    ) - vector_visits
                if self._execution is not None:
                    row["pool_jobs"] = self._execution.effective_jobs
                    row["pool_clamped"] = self._execution.clamped
                baseline = baselines.get(record.group_key)
                if baseline is not None:
                    base = baseline.result
                    if base.total_energy_j > 0:
                        row["saved_percent"] = 100.0 * (
                            (base.total_energy_j - result.total_energy_j)
                            / base.total_energy_j
                        )
                    else:
                        row["saved_percent"] = 0.0
                    if base.total_switches:
                        row["switches_normalized"] = (
                            result.total_switches / base.total_switches
                        )
                row["cells"] = self._metro_cell_rows(result, baseline)
                yield row
                continue
            if record.is_cell:
                row = {
                    "trace": record.trace_label,
                    "carrier": record.carrier,
                    "scheme": record.scheme,
                    "dormancy": record.dormancy,
                    "shards": record.shards,
                    "seed": record.seed,
                    "devices": len(result.devices),
                    "energy_j": result.total_energy_j,
                    "switch_count": result.total_switches,
                    "rrc_messages": result.signaling.messages,
                    "dormancy_requests": result.dormancy_requests,
                    "denial_rate": result.denial_rate,
                    "peak_active_devices": result.peak_active_devices,
                    "peak_switches_per_minute": result.peak_switches_per_minute,
                    "from_cache": record.from_cache,
                }
                if record.engine != "scalar":
                    row["engine"] = record.engine
                    row["vector_devices"] = result.vector_devices
                    row["fallback_devices"] = (
                        len(result.devices) - result.vector_devices
                    )
                if self._execution is not None:
                    row["pool_jobs"] = self._execution.effective_jobs
                    row["pool_clamped"] = self._execution.clamped
                baseline = baselines.get(record.group_key)
                if baseline is not None:
                    base = baseline.result
                    if base.total_energy_j > 0:
                        row["saved_percent"] = 100.0 * (
                            (base.total_energy_j - result.total_energy_j)
                            / base.total_energy_j
                        )
                    else:
                        row["saved_percent"] = 0.0
                    if base.total_switches:
                        row["switches_normalized"] = (
                            result.total_switches / base.total_switches
                        )
                learning = result.learning_summary()
                if learning["learning_devices"]:
                    # Learning-curve columns, only for cells that actually
                    # ran an online learner (keeps non-learning rows flat).
                    row["learning_devices"] = learning["learning_devices"]
                    row["learn_iterations"] = learning["learn_iterations"]
                    row["learn_delay_first_s"] = learning["mean_delay_first_s"]
                    row["learn_delay_final_s"] = learning["mean_delay_final_s"]
                cohorts = self._cohort_rows(result, baseline)
                if cohorts:
                    row["cohorts"] = cohorts
                yield row
                continue
            row = {
                "trace": record.trace_label,
                "carrier": record.carrier,
                "scheme": record.scheme,
                "seed": record.seed,
                "energy_j": result.total_energy_j,
                "switch_count": result.switch_count,
                "promotion_count": result.promotion_count,
                "mean_delay_s": result.mean_delay,
                "median_delay_s": result.median_delay,
                "from_cache": record.from_cache,
            }
            baseline = baselines.get(record.group_key)
            if baseline is not None:
                row["saved_percent"] = 100.0 * result.energy_saved_fraction(
                    baseline.result
                )
                row["switches_normalized"] = result.switches_normalized(
                    baseline.result
                )
            yield row

    def to_records(self, baseline_scheme: str | None = BASELINE_SCHEME,
                   ) -> list[dict[str, Any]]:
        """The :meth:`iter_records` rows as a list (the eager form)."""
        return list(self.iter_records(baseline_scheme))

    def to_csv(self, path: str | Path,
               baseline_scheme: str | None = BASELINE_SCHEME) -> None:
        """Write :meth:`to_records` rows as CSV.

        The nested per-cohort ``cohorts`` mapping of scenario cells — and
        the nested per-cell ``cells`` mapping of metro records — have no
        flat representation and are omitted; use :meth:`to_json` (or
        :meth:`to_records` directly) for the nested data.
        """
        from ..reporting.render import write_csv

        rows, fieldnames = self._flat_rows(baseline_scheme)
        write_csv(rows, path, fieldnames=fieldnames)

    def to_json(self, path: str | Path | None = None,
                baseline_scheme: str | None = BASELINE_SCHEME) -> str:
        """Serialise the run set (records + cache counters) to JSON.

        Returns the JSON text; when ``path`` is given it is also written
        there.
        """
        payload: dict[str, Any] = {"records": self.to_records(baseline_scheme)}
        if self._cache_stats is not None:
            payload["cache"] = {
                "hits": self._cache_stats.hits,
                "misses": self._cache_stats.misses,
                "size": self._cache_stats.size,
            }
        text = json.dumps(payload, indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def _flat_rows(self, baseline_scheme: str | None
                   ) -> tuple[list[dict[str, Any]], list[str]]:
        """Nested-mapping-free rows plus the union of their column names."""
        rows = [
            {k: v for k, v in row.items() if k not in ("cohorts", "cells")}
            for row in self.iter_records(baseline_scheme)
        ]
        fieldnames: list[str] = []
        for row in rows:
            for name in row:
                if name not in fieldnames:
                    fieldnames.append(name)
        return rows, fieldnames

    def to_npz(self, path: str | Path,
               baseline_scheme: str | None = BASELINE_SCHEME) -> None:
        """Write the flat record columns as a compressed numpy ``.npz``.

        One named array per :meth:`to_records` column (nested ``cohorts``
        / ``cells`` mappings omitted, as in :meth:`to_csv`).  Columns
        present on only some rows widen: numeric columns to float64 with
        ``nan`` holes, everything else to strings with ``""`` holes —
        so mixed single-UE/cell sweeps still round-trip.  Requires numpy.
        """
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - numpy is baked in
            raise RuntimeError(
                "RunSet.to_npz requires numpy; use to_csv()/to_json()"
            ) from exc

        rows, fieldnames = self._flat_rows(baseline_scheme)

        def column(name: str):
            values = [row.get(name) for row in rows]
            present = [v for v in values if v is not None]
            if present and all(isinstance(v, bool) for v in present):
                return np.array(
                    [bool(v) for v in values], dtype=np.bool_
                ) if None not in values else np.array(
                    ["" if v is None else str(v) for v in values]
                )
            if (present and None not in values
                    and all(type(v) is int for v in present)):
                return np.array(values, dtype=np.int64)
            if present and all(isinstance(v, (int, float)) for v in present):
                return np.array(
                    [float("nan") if v is None else float(v) for v in values],
                    dtype=np.float64,
                )
            return np.array(["" if v is None else str(v) for v in values])

        np.savez_compressed(
            Path(path), **{name: column(name) for name in fieldnames}
        )

    def to_parquet(self, path: str | Path,
                   baseline_scheme: str | None = BASELINE_SCHEME) -> None:
        """Write the flat record table as a parquet file (needs pyarrow).

        Same flat columns as :meth:`to_csv` / :meth:`to_npz`.  pyarrow is
        an *optional* dependency: without it this raises a
        :class:`RuntimeError` naming the alternatives instead of an
        ImportError from deep inside an export pipeline.
        """
        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError as exc:
            raise RuntimeError(
                "RunSet.to_parquet requires the optional dependency "
                "pyarrow; install it, or export with to_npz()/to_csv()/"
                "to_json() instead"
            ) from exc

        rows, fieldnames = self._flat_rows(baseline_scheme)
        # Normalise ragged rows so every column exists in every row —
        # from_pylist infers a unified schema with nulls for the holes.
        table = pa.Table.from_pylist(
            [{name: row.get(name) for name in fieldnames} for row in rows]
        )
        pq.write_table(table, str(path))
