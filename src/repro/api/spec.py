"""Declarative run specifications: the atoms an :class:`ExperimentPlan` expands to.

A sweep is a grid over three axes — workload × carrier × policy (optionally
repeated over seeds) — and every cell of that grid is one :class:`RunSpec`.
A spec is a small, immutable, picklable *description* of a run rather than
the run's live objects: the trace is described by a :class:`TraceSpec`
(application name + duration + seed, user id, capture path, or an inline
:class:`~repro.traces.packet.PacketTrace`) and the policy by a
:class:`PolicySpec` (scheme name + window size, or a top-level factory).
This is what lets :class:`~repro.api.runner.ProcessPoolRunner` ship specs to
worker processes and rebuild the heavyweight objects there, and what gives
:class:`~repro.api.cache.ResultCache` a stable key to deduplicate runs on.

:func:`execute` is the single entry point that materialises a spec into a
:class:`~repro.sim.results.SimulationResult`; both runner backends call it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from ..config import KNOWN_SCHEMES
from ..core.controller import build_scheme
from ..core.policy import RadioPolicy
from ..rrc.profiles import get_profile
from ..sim.results import SimulationResult
from ..sim.simulator import TraceSimulator
from ..traces.packet import PacketTrace

__all__ = [
    "TraceSpec",
    "PolicySpec",
    "RunSpec",
    "app",
    "user",
    "pcap",
    "tcpdump",
    "inline",
    "scheme",
    "execute",
]

#: Trace kinds whose workload is regenerated from a seed (so ``repeat(seeds=...)``
#: produces genuinely different traffic) as opposed to fixed external data.
_SEEDED_KINDS = ("application", "user")


def _trace_digest(trace: PacketTrace) -> str:
    """Exact content digest of a trace (floats via repr, which round-trips)."""
    digest = hashlib.sha256()
    for p in trace:
        digest.update(
            f"{p.timestamp!r}|{p.size}|{p.direction.value}|{p.flow_id}\n".encode()
        )
    return digest.hexdigest()


@dataclass(frozen=True)
class TraceSpec:
    """How to (re)build one packet trace.

    ``kind`` selects the source:

    * ``"application"`` — :func:`~repro.traces.synthetic.generate_application_trace`
      with ``name``/``duration_s``/``seed``;
    * ``"user"`` — :func:`~repro.traces.users.user_trace` with ``name`` as the
      population, ``user_id`` and ``duration_s`` interpreted as seconds per day;
    * ``"pcap"`` / ``"tcpdump"`` — a capture file at ``path``;
    * ``"inline"`` — a concrete :class:`PacketTrace` carried in ``trace``
      (not serialisable to JSON, but picklable for the process pool).
    """

    kind: str = "application"
    name: str = "email"
    user_id: int = 1
    path: str = ""
    duration_s: float = 3600.0
    seed: int = 0
    trace: PacketTrace | None = field(default=None, compare=True)

    def __post_init__(self) -> None:
        if self.kind not in ("application", "user", "pcap", "tcpdump", "inline"):
            raise ValueError(
                "trace kind must be 'application', 'user', 'pcap', 'tcpdump' "
                f"or 'inline', got {self.kind!r}"
            )
        if self.kind == "inline" and self.trace is None:
            raise ValueError("an inline trace spec requires a PacketTrace")
        if self.kind in ("pcap", "tcpdump") and not self.path:
            raise ValueError(f"a {self.kind} trace spec requires a file path")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.kind == "application":
            from ..traces.synthetic import APPLICATION_PROFILES

            if self.name.lower() not in APPLICATION_PROFILES:
                raise ValueError(
                    f"unknown application {self.name!r}; known: "
                    f"{sorted(APPLICATION_PROFILES)}"
                )
        if self.kind == "user":
            from ..traces.users import USER_POPULATIONS

            if self.name not in USER_POPULATIONS:
                raise ValueError(
                    f"unknown user population {self.name!r}; known: "
                    f"{sorted(USER_POPULATIONS)}"
                )

    @property
    def label(self) -> str:
        """Short human-readable identity used in result tables and grouping."""
        if self.kind == "application":
            return self.name
        if self.kind == "user":
            return f"{self.name}:user{self.user_id}"
        if self.kind == "inline":
            assert self.trace is not None
            return self.trace.name or "inline"
        return self.path

    @property
    def fingerprint(self) -> tuple:
        """Stable cache-key component identifying the trace this spec builds.

        Two specs with equal fingerprints build identical traces, so their
        simulations can share one cached result.  Inline traces are digested
        packet by packet (exact — float repr round-trips); the digest is
        memoised on the spec so repeated key accesses stay O(1).
        """
        cached = getattr(self, "_fingerprint_memo", None)
        if cached is not None:
            return cached
        if self.kind == "application":
            fingerprint = ("application", self.name, self.duration_s, self.seed)
        elif self.kind == "user":
            fingerprint = ("user", self.name, self.user_id, self.duration_s,
                           self.seed)
        elif self.kind == "inline":
            assert self.trace is not None
            fingerprint = ("inline", self.trace.name, _trace_digest(self.trace))
        else:
            fingerprint = (self.kind, self.path)
        object.__setattr__(self, "_fingerprint_memo", fingerprint)
        return fingerprint

    def with_seed(self, seed: int) -> "TraceSpec":
        """Return a copy regenerated under ``seed`` (no-op for fixed sources)."""
        if self.kind in _SEEDED_KINDS:
            return replace(self, seed=seed)
        return self

    def build(self) -> PacketTrace:
        """Materialise the trace this spec describes."""
        if self.kind == "inline":
            assert self.trace is not None
            return self.trace
        if self.kind == "application":
            from ..traces.synthetic import generate_application_trace

            return generate_application_trace(
                self.name, duration=self.duration_s, seed=self.seed
            )
        if self.kind == "user":
            from ..traces.users import user_trace

            return user_trace(
                self.name,
                self.user_id,
                hours_per_day=self.duration_s / 3600.0,
                seed=self.seed,
            )
        if self.kind == "pcap":
            from ..traces.pcap import read_pcap

            return read_pcap(self.path)
        from ..traces.tcpdump import read_tcpdump

        return read_tcpdump(self.path).trace

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (inline traces cannot be serialised)."""
        if self.kind == "inline":
            raise ValueError(
                "an inline TraceSpec holds a concrete PacketTrace and cannot "
                "be serialised; describe the workload by kind instead"
            )
        return {
            "kind": self.kind,
            "name": self.name,
            "user_id": self.user_id,
            "path": self.path,
            "duration_s": self.duration_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSpec":
        """Re-create a spec from :meth:`to_dict` output."""
        return cls(**dict(data))


@dataclass(frozen=True)
class PolicySpec:
    """How to build one radio control policy.

    ``scheme`` is either ``"status_quo"`` or one of the scheme names of
    :func:`~repro.core.controller.standard_policies`; ``window_size`` is the
    MakeIdle observation window (``None`` inherits the plan-level default).
    Alternatively ``factory`` may name a zero-argument top-level callable
    returning a fresh :class:`RadioPolicy`; top-level is required so the spec
    stays picklable for the process pool.
    """

    scheme: str = "status_quo"
    window_size: int | None = None
    factory: Callable[[], RadioPolicy] | None = field(default=None, compare=True)

    def __post_init__(self) -> None:
        if self.window_size is not None and self.window_size < 2:
            raise ValueError(
                f"window_size must be >= 2, got {self.window_size}"
            )
        if self.factory is not None:
            # A factory policy must not masquerade as the baseline: give it
            # its own scheme label (derived from the factory if unset) so
            # baseline normalisation never mistakes it for the status quo.
            if self.scheme == "status_quo":
                object.__setattr__(
                    self, "scheme", getattr(self.factory, "__name__", "custom")
                )
        elif self.scheme not in KNOWN_SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; known: {list(KNOWN_SCHEMES)} "
                "(or pass a factory)"
            )

    @property
    def key(self) -> tuple:
        """Stable cache-key component identifying the built policy."""
        if self.factory is not None:
            return ("factory", self.scheme,
                    f"{self.factory.__module__}.{self.factory.__qualname__}")
        if self.scheme == "status_quo":
            return ("status_quo",)
        return (self.scheme, self.window_size)

    def resolved(self, default_window: int) -> "PolicySpec":
        """Fill in the plan-level window size where none was given."""
        if self.factory is not None or self.scheme == "status_quo":
            return self
        if self.window_size is not None:
            return self
        return replace(self, window_size=default_window)

    def build(self) -> RadioPolicy:
        """Construct a fresh policy instance.

        Built through :func:`~repro.core.controller.build_scheme` so only the
        requested scheme is constructed (cell builders call this once per
        device) and every call returns a policy whose learner state is owned
        by exactly one UE.
        """
        if self.factory is not None:
            return self.factory()
        if self.scheme == "status_quo":
            return build_scheme("status_quo")
        window = self.window_size if self.window_size is not None else 100
        return build_scheme(self.scheme, window)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (factory policies cannot be serialised)."""
        if self.factory is not None:
            raise ValueError(
                "a PolicySpec with a custom factory cannot be serialised"
            )
        return {"scheme": self.scheme, "window_size": self.window_size}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        """Re-create a spec from :meth:`to_dict` output."""
        return cls(**dict(data))


@dataclass(frozen=True)
class RunSpec:
    """One cell of the sweep grid: a trace, a carrier and a policy.

    ``seed`` records which repetition of the plan produced this spec; the
    trace spec has already been re-seeded accordingly, so the seed is carried
    purely for grouping and reporting.
    """

    trace: TraceSpec
    carrier: str
    policy: PolicySpec
    seed: int = 0

    def __post_init__(self) -> None:
        get_profile(self.carrier)  # validate the key early, with a clear error

    @property
    def cache_key(self) -> tuple:
        """Key under which this run's result is cached and deduplicated.

        Two specs with equal keys simulate the same (trace, carrier, policy)
        triple, so the status-quo baseline shared by every scheme of a sweep
        is simulated exactly once per (trace fingerprint, carrier).
        """
        return (self.trace.fingerprint, self.carrier, self.policy.key)

    @property
    def scheme(self) -> str:
        """The policy's scheme name (falls back to the factory scheme label)."""
        return self.policy.scheme


# -- axis declaration helpers --------------------------------------------------------

def app(name: str, duration: float = 3600.0, seed: int = 0) -> TraceSpec:
    """A synthetic single-application workload axis entry."""
    return TraceSpec(kind="application", name=name, duration_s=duration, seed=seed)


def user(population: str, user_id: int, hours_per_day: float = 2.0,
         seed: int = 0) -> TraceSpec:
    """A synthetic user-day workload axis entry."""
    return TraceSpec(
        kind="user", name=population, user_id=user_id,
        duration_s=hours_per_day * 3600.0, seed=seed,
    )


def pcap(path: str) -> TraceSpec:
    """A pcap capture workload axis entry."""
    return TraceSpec(kind="pcap", path=path)


def tcpdump(path: str) -> TraceSpec:
    """A tcpdump text-log workload axis entry."""
    return TraceSpec(kind="tcpdump", path=path)


def inline(trace: PacketTrace) -> TraceSpec:
    """Wrap a concrete :class:`PacketTrace` as a workload axis entry."""
    return TraceSpec(kind="inline", trace=trace)


def scheme(name: str, window_size: int | None = None) -> PolicySpec:
    """A policy axis entry by scheme name (window size optional)."""
    return PolicySpec(scheme=name, window_size=window_size)


#: Process-local memo of generated traces, keyed by trace fingerprint.  A
#: sweep replays the same workload under many carriers and policies; traces
#: are immutable, so each unique one is generated once per process instead
#: of once per grid cell.  FIFO-bounded so open-ended sweeps (thousands of
#: distinct users/seeds) cannot grow memory without limit.  (Capture files
#: are *not* memoised: re-reading them is explicit I/O the caller controls.)
_TRACE_MEMO: dict[tuple, PacketTrace] = {}
_TRACE_MEMO_MAX = 128


def build_trace(spec: TraceSpec) -> PacketTrace:
    """Materialise ``spec``'s trace, memoising seeded synthetic workloads."""
    if spec.kind in _SEEDED_KINDS:
        fingerprint = spec.fingerprint
        trace = _TRACE_MEMO.get(fingerprint)
        if trace is None:
            trace = spec.build()
            while len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
                _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
            _TRACE_MEMO[fingerprint] = trace
        return trace
    return spec.build()


def execute(spec: RunSpec) -> SimulationResult:
    """Materialise and run one spec: the unit of work of every runner backend.

    This is a module-level function so :class:`ProcessPoolRunner` can send it
    to worker processes by reference.
    """
    profile = get_profile(spec.carrier)
    trace = build_trace(spec.trace)
    policy = spec.policy.build()
    return TraceSimulator(profile).run(trace, policy)
