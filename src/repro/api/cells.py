"""Cell-scale sweep specs: the population axis of an :class:`ExperimentPlan`.

The paper's §8 future-work question — what happens at the base station when
*many* phones run these schemes — becomes a first-class sweep axis here.  A
:class:`CellSpec` describes a reproducible device population (how many
devices, which application mix, how much traffic, streamed or materialised);
a :class:`DormancySpec` describes the base-station policy arbitrating
fast-dormancy requests; and a :class:`CellRunSpec` is one cell of the
expanded grid: population × carrier × device policy × dormancy policy.

Like their single-UE counterparts in :mod:`repro.api.spec`, these are
small, immutable, picklable *descriptions*: the process-pool runner ships
them to workers, and the result cache keys on
``(population fingerprint, carrier, device-policy key, dormancy key)`` so a
sweep never simulates the same cell twice.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from ..basestation.cell import (
    CellResult,
    CellShard,
    CellSimulator,
    DeviceSpec,
    merge_cell_shards,
)
from ..basestation.policies import (
    AcceptAllDormancy,
    DormancyPolicy,
    LoadAwareDormancy,
    RateLimitedDormancy,
    RejectAllDormancy,
    partition_switch_budget,
)
from ..rrc.profiles import get_profile
from ..scenarios.scenario import Scenario
from ..traces.packet import PacketTrace
from ..traces.streaming import stream_application_packets
from .spec import PolicySpec

__all__ = [
    "DORMANCY_SCHEMES",
    "CellRunSpec",
    "CellSpec",
    "DormancySpec",
    "cell",
    "dormancy",
    "execute_cell",
    "execute_cell_shard",
    "shard_sizes",
]

#: Load-sample cadence of sharded cell runs, seconds.  Sharding loses the
#: exact instantaneous active-device peak (each shard only sees its own
#: devices), so sharded execution always records the load series on this
#: shared grid and the merge recomputes the peak from the summed series.
SHARD_SAMPLE_INTERVAL_S = 5.0

#: Base-station dormancy schemes selectable by name; the optional spec
#: parameter feeds the scheme's single knob.
DORMANCY_SCHEMES: tuple[str, ...] = (
    "accept_all",
    "reject_all",
    "rate_limited",
    "load_aware",
)

#: Seed stride between devices of one cell, so every device's workload is
#: distinct but the whole population is reproducible from one seed.
_DEVICE_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class DormancySpec:
    """How to build one base-station dormancy policy.

    ``param`` feeds the scheme's knob: ``min_interval_s`` for
    ``rate_limited``, ``max_switches_per_minute`` for ``load_aware``;
    unused (and refused) for the parameterless schemes.
    """

    scheme: str = "accept_all"
    param: float | None = None

    def __post_init__(self) -> None:
        if self.scheme not in DORMANCY_SCHEMES:
            raise ValueError(
                f"unknown dormancy scheme {self.scheme!r}; "
                f"known: {list(DORMANCY_SCHEMES)}"
            )
        if self.param is not None and self.scheme in ("accept_all", "reject_all"):
            raise ValueError(f"{self.scheme!r} takes no parameter")
        if (self.scheme == "load_aware" and self.param is not None
                and self.param != int(self.param)):
            # A fractional budget would be silently truncated by build(),
            # leaving the label/cache key claiming a policy never in effect.
            raise ValueError(
                "load_aware takes a whole switches-per-minute budget, "
                f"got {self.param}"
            )

    @property
    def key(self) -> tuple:
        """Stable cache-key component identifying the built policy."""
        return (self.scheme, self.param)

    @property
    def label(self) -> str:
        """Short human-readable identity used in result tables."""
        if self.param is None:
            return self.scheme
        return f"{self.scheme}({self.param:g})"

    def build(self) -> DormancyPolicy:
        """Construct a fresh dormancy policy instance."""
        if self.scheme == "accept_all":
            return AcceptAllDormancy()
        if self.scheme == "reject_all":
            return RejectAllDormancy()
        if self.scheme == "rate_limited":
            if self.param is not None:
                return RateLimitedDormancy(min_interval_s=self.param)
            return RateLimitedDormancy()
        if self.param is not None:
            return LoadAwareDormancy(max_switches_per_minute=int(self.param))
        return LoadAwareDormancy()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {"scheme": self.scheme, "param": self.param}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DormancySpec":
        """Re-create a spec from :meth:`to_dict` output."""
        return cls(**dict(data))


@dataclass(frozen=True)
class CellSpec:
    """A reproducible device population: the cell-sweep workload axis entry.

    Device ``i`` of the population runs the application
    ``apps[i % len(apps)]`` with a seed derived from ``seed`` and ``i``, so
    the whole population regenerates exactly from the spec.  With
    ``streaming=True`` (the default) each device's workload is produced
    lazily in ``chunk_s``-second chunks, keeping a sweep's memory bounded
    by the device count rather than the total packet count.

    Alternatively a :class:`~repro.scenarios.scenario.Scenario` describes
    a *heterogeneous* population: weighted archetype cohorts (multi-app
    workloads at per-cohort traffic intensities, optionally running their
    own device-side policies) under an optional diurnal traffic shape.
    With a scenario the ``apps`` cycling rule is replaced by the
    scenario's cohort layout — devices carry cohort labels through to the
    result — while ``devices``/``duration_s``/``seed``/``chunk_s`` keep
    their meaning.
    """

    devices: int = 100
    apps: tuple[str, ...] = ("im", "email", "news")
    duration_s: float = 900.0
    seed: int = 0
    name: str = ""
    streaming: bool = True
    chunk_s: float = 300.0
    scenario: Scenario | None = None
    #: Kernel backend executing this population: ``"scalar"`` (the
    #: per-event reference kernel) or ``"vector"`` (the numpy batch
    #: backend, byte-identical results; see
    #: :mod:`repro.sim.vector_engine`).  Deliberately *not* part of
    #: :attr:`fingerprint`: both backends produce the same bytes, so
    #: cache entries are shared across engines.
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if not isinstance(self.engine, str):
            raise TypeError(
                f"engine must be str, got {type(self.engine).__name__}"
            )
        if self.engine not in ("scalar", "vector"):
            raise ValueError(
                f"engine must be 'scalar' or 'vector', got {self.engine!r}"
            )
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if not self.apps and self.scenario is None:
            raise ValueError("at least one application is required")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.chunk_s <= 0:
            raise ValueError(f"chunk_s must be positive, got {self.chunk_s}")
        if self.scenario is not None:
            if not isinstance(self.scenario, Scenario):
                raise TypeError(
                    "scenario must be a repro.scenarios.Scenario (use "
                    "get_scenario(name) for presets), got "
                    f"{type(self.scenario).__name__}"
                )
            # The scenario's cohorts define every workload: clear the apps
            # cycle so equality, repr and serialisation cannot carry an
            # app list that never runs.
            object.__setattr__(self, "apps", ())
            return
        from ..traces.synthetic import APPLICATION_PROFILES

        for app in self.apps:
            if app.lower() not in APPLICATION_PROFILES:
                raise ValueError(
                    f"unknown application {app!r}; known: "
                    f"{sorted(APPLICATION_PROFILES)}"
                )

    @property
    def label(self) -> str:
        """Short human-readable identity used in result tables and grouping.

        Unnamed populations carry a digest of their seed-independent
        identity (apps, duration, generation mode), so two different
        populations of the same size never share a label — and therefore
        never share a :class:`~repro.api.runset.RunRecord` group, which
        would cross their baselines.  The seed stays out of the digest so
        ``repeat(seeds=...)`` repetitions of one population group together.
        """
        if self.name:
            return self.name
        if self.scenario is not None:
            # chunk_s always matters here: scenario workloads generate via
            # the chunked stream even when materialised (streaming=False).
            identity = repr((self.scenario.fingerprint, self.duration_s,
                             self.streaming, self.chunk_s))
            digest = zlib.crc32(identity.encode("utf-8"))
            return f"{self.scenario.name}{self.devices}-{digest:08x}"
        identity = repr((self.apps, self.duration_s, self.streaming,
                         self.chunk_s if self.streaming else None))
        digest = zlib.crc32(identity.encode("utf-8"))
        return f"cell{self.devices}-{digest:08x}"

    @property
    def fingerprint(self) -> tuple:
        """Stable cache-key component identifying the population this builds.

        Chunked (streaming) generation samples the workload differently
        than single-shot generation, so ``streaming``/``chunk_s`` are part
        of the identity.  A scenario population's identity is the
        scenario's own fingerprint (cohorts, intensities, policy
        overrides, diurnal shape) in place of the homogeneous app cycle.
        """
        workload = (
            self.scenario.fingerprint if self.scenario is not None else self.apps
        )
        # Scenario workloads generate via the chunked stream even when
        # materialised, so chunk_s stays in their identity regardless of
        # the streaming flag.
        chunked = self.streaming or self.scenario is not None
        return (
            "cell",
            self.devices,
            workload,
            self.duration_s,
            self.seed,
            self.streaming,
            self.chunk_s if chunked else None,
        )

    def with_seed(self, seed: int) -> "CellSpec":
        """Return a copy regenerated under ``seed``."""
        return replace(self, seed=seed)

    def build_devices(
        self, policy: PolicySpec, start: int = 0, stop: int | None = None
    ) -> list[DeviceSpec]:
        """Materialise the population, one fresh policy instance per device.

        ``start``/``stop`` select a contiguous slice of the population (a
        shard): device ids, per-device seeds and workloads are global
        indices, so building the population shard by shard yields exactly
        the devices a whole-population build would.
        """
        stop = self.devices if stop is None else stop
        if not 0 <= start <= stop <= self.devices:
            raise ValueError(
                f"invalid device slice [{start}, {stop}) of {self.devices}"
            )
        if self.scenario is not None:
            return self._build_scenario_devices(policy, start, stop)
        specs: list[DeviceSpec] = []
        for index in range(start, stop):
            app = self.apps[index % len(self.apps)]
            device_seed = self.seed * _DEVICE_SEED_STRIDE + index
            if self.streaming:
                source = stream_application_packets(
                    app,
                    duration=self.duration_s,
                    seed=device_seed,
                    chunk_s=self.chunk_s,
                )
            else:
                from ..traces.synthetic import generate_application_trace

                source = generate_application_trace(
                    app, duration=self.duration_s, seed=device_seed
                )
            specs.append(
                DeviceSpec(device_id=index, trace=source, policy=policy.build())
            )
        return specs

    def _build_scenario_devices(
        self, policy: PolicySpec, start: int, stop: int
    ) -> list[DeviceSpec]:
        """Materialise a scenario-population slice.

        Cohort membership, per-device seeds and envelopes are pure
        functions of the *global* device index (see
        :mod:`repro.scenarios.scenario`), so shard-by-shard builds equal
        the whole-population build.  Scenario workloads always generate
        via the chunked stream — with ``streaming=False`` the stream is
        materialised into a :class:`~repro.traces.packet.PacketTrace`
        holding the identical packets (offline device policies need the
        full trace in ``prepare``).
        """
        scenario = self.scenario
        # One apportionment for the whole slice: walk the cohorts' index
        # blocks (contiguous, in declaration order) rather than resolving
        # membership per device.
        specs: list[DeviceSpec] = []
        offset = 0
        for cohort, size in zip(scenario.cohorts,
                                scenario.cohort_sizes(self.devices)):
            block_start, block_stop = offset, offset + size
            offset = block_stop
            device_policy = cohort.policy if cohort.policy is not None else policy
            for index in range(max(block_start, start),
                               min(block_stop, stop)):
                source: Any = scenario.cohort_stream(
                    cohort, index, self.duration_s, self.seed, self.chunk_s
                )
                if not self.streaming:
                    source = PacketTrace(list(source), name=cohort.label)
                specs.append(
                    DeviceSpec(
                        device_id=index,
                        trace=source,
                        policy=device_policy.build(),
                        cohort=cohort.label,
                    )
                )
        return specs

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        data = {
            "devices": self.devices,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "name": self.name,
            "streaming": self.streaming,
            "chunk_s": self.chunk_s,
        }
        if self.engine != "scalar":
            data["engine"] = self.engine
        if self.scenario is not None:
            # The scenario defines every workload; an apps list here would
            # describe traffic that never runs.
            data["scenario"] = self.scenario.to_dict()
        else:
            data["apps"] = list(self.apps)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellSpec":
        """Re-create a spec from :meth:`to_dict` output."""
        payload = dict(data)
        payload["apps"] = tuple(payload.get("apps", ()))
        scenario = payload.get("scenario")
        if scenario is not None:
            payload["scenario"] = Scenario.from_dict(scenario)
        return cls(**payload)


@dataclass(frozen=True)
class CellRunSpec:
    """One cell of the cell-sweep grid: population × carrier × policies.

    The single-UE :class:`~repro.api.spec.RunSpec`'s cell-scale sibling;
    ``policy`` is the *device-side* scheme every device runs, ``dormancy``
    the base-station arbiter, and ``shards`` how many device partitions
    the run executes in (1 = the single-process reference path).
    """

    cell: CellSpec
    carrier: str
    policy: PolicySpec
    dormancy: DormancySpec
    seed: int = 0
    shards: int = 1

    def __post_init__(self) -> None:
        get_profile(self.carrier)  # validate the key early, with a clear error
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    @property
    def effective_shards(self) -> int:
        """The shard count actually executed: capped at one device per shard."""
        return min(self.shards, self.cell.devices)

    @property
    def cache_key(self) -> tuple:
        """Key under which this cell run's result is cached and deduplicated.

        Status-quo devices never issue fast-dormancy requests, so the
        base-station policy cannot influence their result: the dormancy
        component is dropped from the key and the (most expensive, most
        repeated) baseline population is simulated once per
        (population, carrier) regardless of how many dormancy policies the
        plan sweeps.  That collapse is only sound when *every* device is
        on the status quo — a mixed-policy scenario's cohort overrides
        issue fast-dormancy requests whatever the policy axis says, so
        populations with overrides always keep the dormancy component.
        The shard count *is* part of the key — per-device
        records are byte-identical across shard counts only for
        shard-independent dormancy policies, and cell aggregates such as
        ``peak_active_devices`` always carry shard-dependent precision —
        so a shard sweep never serves one shard count's result for
        another.
        """
        pure_status_quo = (
            self.policy.factory is None
            and self.policy.scheme == "status_quo"
            and not (self.cell.scenario is not None
                     and self.cell.scenario.has_policy_overrides)
        )
        dormancy_key = None if pure_status_quo else self.dormancy.key
        return (
            self.cell.fingerprint,
            self.carrier,
            self.policy.key,
            dormancy_key,
            self.effective_shards,
        )

    @property
    def scheme(self) -> str:
        """The device-side policy's scheme name."""
        return self.policy.scheme

    @property
    def label(self) -> str:
        """The population label (the workload-axis value of this run)."""
        return self.cell.label


# -- axis declaration helpers --------------------------------------------------------

def cell(devices: int, apps: tuple[str, ...] | list[str] | None = None,
         duration: float = 900.0, seed: int = 0, name: str = "",
         streaming: bool = True, chunk_s: float = 300.0,
         scenario: Scenario | str | None = None,
         engine: str = "scalar") -> CellSpec:
    """A device-population axis entry for cell sweeps.

    ``scenario`` selects a heterogeneous population instead of the
    homogeneous ``apps`` cycle: a :class:`~repro.scenarios.Scenario` or a
    preset name (``"uniform"``, ``"office_day"``, ``"evening_peak"``,
    ``"mixed_policy"``, ...).  The two workload descriptions are mutually
    exclusive; ``apps`` defaults to ``("im", "email", "news")`` when
    neither is given.
    """
    if apps is not None and scenario is not None:
        raise ValueError(
            "a scenario defines its own application mixes per cohort; "
            "pass apps or scenario, not both"
        )
    if isinstance(scenario, str):
        from ..scenarios.presets import get_scenario

        scenario = get_scenario(scenario)
    if apps is None:
        apps = () if scenario is not None else ("im", "email", "news")
    return CellSpec(
        devices=devices, apps=tuple(apps), duration_s=duration, seed=seed,
        name=name, streaming=streaming, chunk_s=chunk_s, scenario=scenario,
        engine=engine,
    )


def dormancy(scheme: str, param: float | None = None) -> DormancySpec:
    """A base-station dormancy axis entry by scheme name."""
    return DormancySpec(scheme=scheme, param=param)


def shard_sizes(devices: int, shards: int) -> list[int]:
    """Balanced contiguous-partition sizes of ``devices`` into ``shards``.

    Shard ``j`` holds the device-index block starting at
    ``sum(shard_sizes(...)[:j])``; sizes differ by at most one, with the
    remainder going to the earliest shards.
    """
    if devices < 1:
        raise ValueError(f"devices must be >= 1, got {devices}")
    if not 1 <= shards <= devices:
        raise ValueError(
            f"shards must be in [1, {devices} devices], got {shards}"
        )
    base, remainder = divmod(devices, shards)
    return [base + (1 if j < remainder else 0) for j in range(shards)]


def _shard_dormancy_policy(
    spec: DormancySpec, sizes: Sequence[int], index: int
) -> DormancyPolicy:
    """Build shard ``index``'s base-station policy for a sharded run.

    Per-device and stateless schemes build unchanged — each shard's
    instance only ever sees its own shard's devices, so decisions are
    identical to the single-process run.  ``load_aware`` couples devices
    through the cell-wide switch budget, which is partitioned
    proportionally to shard size (see
    :func:`repro.basestation.policies.partition_switch_budget`).
    """
    if spec.scheme != "load_aware" or len(sizes) == 1:
        return spec.build()
    budget = (
        int(spec.param) if spec.param is not None
        else LoadAwareDormancy().max_switches_per_minute
    )
    return LoadAwareDormancy(
        max_switches_per_minute=partition_switch_budget(budget, sizes)[index]
    )


def execute_cell_shard(spec: CellRunSpec, index: int) -> CellShard:
    """Run shard ``index`` of ``spec`` — the unit of sharded fan-out.

    Module-level and driven purely by the picklable spec, so
    :class:`~repro.api.runner.ProcessPoolRunner` can ship individual
    shards of one cell to different worker processes and merge the
    returned partials in the parent.
    """
    sizes = shard_sizes(spec.cell.devices, spec.effective_shards)
    if not 0 <= index < len(sizes):
        raise ValueError(f"shard index {index} out of range [0, {len(sizes)})")
    start = sum(sizes[:index])
    profile = get_profile(spec.carrier)
    simulator = CellSimulator(
        profile,
        _shard_dormancy_policy(spec.dormancy, sizes, index),
        load_sample_interval_s=(
            SHARD_SAMPLE_INTERVAL_S if len(sizes) > 1 else None
        ),
        engine=spec.cell.engine,
    )
    return simulator.run_shard(
        spec.cell.build_devices(spec.policy, start, start + sizes[index])
    )


def execute_cell(spec: CellRunSpec, shards: int | None = None) -> CellResult:
    """Materialise and run one cell spec — the cell analogue of ``execute``.

    Module-level so :class:`~repro.api.runner.ProcessPoolRunner` can send
    it to worker processes by reference.  ``shards`` overrides the spec's
    own shard count; with more than one shard the partitions run
    *sequentially in this process* and merge — byte-identical per-device
    results, no parallelism.  Cross-process parallel sharding belongs to
    the runner layer (:class:`~repro.api.runner.ProcessPoolRunner` ships
    :func:`execute_cell_shard` calls to workers), which keeps worker-side
    execution free of nested process pools.
    """
    if shards is not None:
        spec = replace(spec, shards=shards)
    count = spec.effective_shards
    if count == 1:
        profile = get_profile(spec.carrier)
        simulator = CellSimulator(
            profile, spec.dormancy.build(), engine=spec.cell.engine
        )
        return simulator.run(spec.cell.build_devices(spec.policy))
    return merge_cell_shards(
        [execute_cell_shard(spec, index) for index in range(count)]
    )
