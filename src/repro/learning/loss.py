"""Loss functions for the MakeActive expert learners.

The MakeActive learning algorithm (paper Section 5.2) scores each expert's
proposed delay bound ``T_i`` with

.. math::

    L(i) = \\gamma \\cdot \\mathrm{Delay}(T_i) + \\frac{1}{b}, \\qquad \\gamma > 0

where ``Delay(T_i) = sum_j (T_i - t_j)`` is the total extra waiting time the
``b`` currently buffered sessions would suffer if the radio were promoted at
``T_i`` (session ``j`` arrived at ``t_j``), and the ``1/b`` term rewards
batching more sessions together.  ``γ`` trades delay against signalling; the
paper uses 0.008.

The functions here are pure and shared by both the concrete MakeActive
implementation and the generic expert learners (which only need a mapping
from expert index to loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["MakeActiveLoss", "aggregate_delay", "DEFAULT_GAMMA"]

#: The paper's value for the delay-vs-batching trade-off constant.
DEFAULT_GAMMA = 0.008


def aggregate_delay(delay_bound: float, arrival_offsets: Sequence[float]) -> float:
    """Total waiting time of buffered sessions if released at ``delay_bound``.

    ``arrival_offsets`` are the session arrival times measured from the
    moment the first buffered session arrived (so the first entry is 0).
    Sessions that arrive after ``delay_bound`` would not have been buffered
    by this expert and contribute nothing.
    """
    if delay_bound < 0:
        raise ValueError(f"delay_bound must be non-negative, got {delay_bound}")
    return sum(
        delay_bound - offset
        for offset in arrival_offsets
        if 0.0 <= offset <= delay_bound
    )


@dataclass(frozen=True)
class MakeActiveLoss:
    """The paper's MakeActive loss, parameterised by ``γ``.

    Calling the instance with an expert's delay bound and the buffered
    sessions' arrival offsets returns ``γ · Delay(T_i) + 1/b`` where ``b``
    is the number of sessions the expert would have buffered.  Experts whose
    bound buffers no session (``b = 0``) receive the worst-case loss
    ``γ · T_i + 1``, so they are strongly down-weighted.
    """

    gamma: float = DEFAULT_GAMMA

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValueError(f"gamma must be positive, got {self.gamma}")

    def __call__(
        self, delay_bound: float, arrival_offsets: Sequence[float]
    ) -> float:
        buffered = [o for o in arrival_offsets if 0.0 <= o <= delay_bound]
        if not buffered:
            return self.gamma * delay_bound + 1.0
        total_delay = aggregate_delay(delay_bound, buffered)
        return self.gamma * total_delay + 1.0 / len(buffered)
