"""Learn-α: two-layer bank-of-experts learning (Monteleoni & Jaakkola).

A single Fixed-Share learner needs its switching rate ``α`` chosen up front,
but the right value depends on how quickly the traffic pattern changes.  The
paper therefore uses the Learn-α construction: keep ``m`` Fixed-Share
sub-learners, each with its own ``α_j``, and a top-level exponential-weights
learner over them.  The top layer's weights are updated with each α-expert's
*mix loss* (paper Equation 5)

.. math::

    L(\\alpha_j, t) = -\\log \\sum_i p_{t,j}(i)\\, e^{-L(i, t)}

and the overall prediction is the doubly weighted average (Equation 3)

.. math::

    T_t = \\sum_j \\sum_i p'_t(j)\\, p_{t,j}(i)\\, T_i .
"""

from __future__ import annotations

import math
from typing import Sequence

from .experts import FixedShareExperts

__all__ = ["LearnAlpha", "default_alpha_grid"]


def default_alpha_grid(m: int = 8) -> tuple[float, ...]:
    """A reasonable spread of switching rates for the α-experts.

    Produces ``m`` values spanning "almost static" (1e-3) to "switches every
    step" (0.5) on a logarithmic grid, which covers both stationary and
    rapidly changing traffic.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if m == 1:
        return (0.1,)
    low, high = math.log10(1e-3), math.log10(0.5)
    return tuple(10 ** (low + (high - low) * i / (m - 1)) for i in range(m))


class LearnAlpha:
    """Two-layer learner: Fixed-Share sub-learners under an exponential-weights top layer.

    Parameters
    ----------
    expert_values:
        Values proposed by the bottom-layer experts (shared across all
        α-experts); in MakeActive these are candidate delay bounds.
    alphas:
        Switching rates of the α-experts; defaults to
        :func:`default_alpha_grid`.
    """

    def __init__(
        self,
        expert_values: Sequence[float],
        alphas: Sequence[float] | None = None,
    ) -> None:
        if not expert_values:
            raise ValueError("at least one expert value is required")
        alpha_values = tuple(alphas) if alphas is not None else default_alpha_grid()
        if not alpha_values:
            raise ValueError("at least one alpha-expert is required")
        for alpha in alpha_values:
            if not 0.0 <= alpha <= 1.0:
                raise ValueError(f"alpha values must be in [0, 1], got {alpha}")
        self._expert_values = tuple(float(v) for v in expert_values)
        self._sub_learners = [
            FixedShareExperts(self._expert_values, alpha=a) for a in alpha_values
        ]
        self._alpha_weights = [1.0 / len(alpha_values)] * len(alpha_values)
        self._iterations = 0

    # -- read-only views ---------------------------------------------------------------

    @property
    def expert_values(self) -> tuple[float, ...]:
        """Values proposed by the bottom-layer experts."""
        return self._expert_values

    @property
    def alphas(self) -> tuple[float, ...]:
        """The switching rates of the α-experts."""
        return tuple(learner.alpha for learner in self._sub_learners)

    @property
    def alpha_weights(self) -> tuple[float, ...]:
        """Current top-layer weights ``p'_t(j)`` over the α-experts."""
        return tuple(self._alpha_weights)

    @property
    def iterations(self) -> int:
        """Number of updates applied so far."""
        return self._iterations

    @property
    def effective_alpha(self) -> float:
        """Weight-averaged switching rate currently favoured by the top layer."""
        return sum(
            w * learner.alpha
            for w, learner in zip(self._alpha_weights, self._sub_learners)
        )

    # -- prediction and update -----------------------------------------------------------

    def predict(self) -> float:
        """The doubly weighted prediction ``T_t`` (paper Equation 3)."""
        return sum(
            alpha_weight * learner.predict()
            for alpha_weight, learner in zip(self._alpha_weights, self._sub_learners)
        )

    def update(self, losses: Sequence[float]) -> float:
        """Apply one update with per-expert losses shared by every α-expert.

        The top layer is updated with each α-expert's mix loss *before* the
        sub-learners advance (the losses at time ``t-1`` update the weights
        used at time ``t``, matching the paper's indexing), then every
        Fixed-Share sub-learner applies its own update.  Returns the new
        overall prediction.
        """
        if len(losses) != len(self._expert_values):
            raise ValueError(
                f"expected {len(self._expert_values)} losses, got {len(losses)}"
            )
        alpha_losses = [
            learner.loss_of_mixture(losses) for learner in self._sub_learners
        ]
        boosted = [
            w * math.exp(-loss) for w, loss in zip(self._alpha_weights, alpha_losses)
        ]
        total = sum(boosted)
        if total <= 0.0:
            self._alpha_weights = [1.0 / len(boosted)] * len(boosted)
        else:
            self._alpha_weights = [b / total for b in boosted]

        for learner in self._sub_learners:
            learner.update(losses)
        self._iterations += 1
        return self.predict()

    def reset(self) -> None:
        """Restore uniform weights in both layers."""
        for learner in self._sub_learners:
            learner.reset()
        self._alpha_weights = [1.0 / len(self._sub_learners)] * len(self._sub_learners)
        self._iterations = 0
