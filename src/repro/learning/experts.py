"""Bank-of-experts online learning: Static-Share and Fixed-Share updates.

The MakeActive learning algorithm uses the "bank of experts" framework of
Herbster & Warmuth (Fixed-Share) as described in the paper's appendix.  Each
expert ``i`` proposes a fixed value ``T_i`` (a session delay bound in the
MakeActive application, but the machinery is generic).  The algorithm keeps
a weight ``p_t(i)`` per expert, predicts the weighted average of the expert
values, observes a loss ``L(i, t)`` per expert, and updates

.. math::

    p_t(i) = \\frac{1}{Z_t} \\sum_j p_{t-1}(j)\\, e^{-L(j, t-1)}\\, P(i \\mid j, \\alpha)

with the switching kernel

.. math::

    P(i \\mid j, \\alpha) = \\begin{cases} 1 - \\alpha & i = j \\\\
                                         \\alpha / (n - 1) & i \\ne j \\end{cases}

``α = 0`` recovers the Static-expert (pure exponential-weights) update;
``α`` close to 1 lets the best expert change rapidly, which suits bursty
traffic.  Choosing ``α`` well is hard, which is why the paper layers the
Learn-α meta-learner (:mod:`repro.learning.learn_alpha`) on top.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["FixedShareExperts", "switching_kernel"]


def switching_kernel(n_experts: int, alpha: float) -> list[list[float]]:
    """Return the ``P(i | j, α)`` transition matrix as nested lists.

    Row ``j`` gives the probability of moving from expert ``j`` to each
    expert ``i``.  For a single expert the kernel is the identity regardless
    of ``α``.
    """
    if n_experts < 1:
        raise ValueError("n_experts must be at least 1")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if n_experts == 1:
        return [[1.0]]
    off_diagonal = alpha / (n_experts - 1)
    return [
        [1.0 - alpha if i == j else off_diagonal for i in range(n_experts)]
        for j in range(n_experts)
    ]


class FixedShareExperts:
    """Fixed-Share bank of experts over a fixed set of expert values.

    Parameters
    ----------
    expert_values:
        The value each expert proposes (e.g. delay bounds 1..n seconds).
    alpha:
        Switching rate of the Fixed-Share kernel; 0 gives the static
        exponential-weights algorithm.

    The learner starts from uniform weights.  :meth:`predict` returns the
    current weighted average; :meth:`update` consumes one loss per expert
    and applies the Fixed-Share weight update.
    """

    def __init__(self, expert_values: Sequence[float], alpha: float = 0.1) -> None:
        if not expert_values:
            raise ValueError("at least one expert is required")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self._values = tuple(float(v) for v in expert_values)
        self._alpha = alpha
        self._weights = [1.0 / len(self._values)] * len(self._values)
        self._iterations = 0
        self._cumulative_loss = 0.0

    # -- read-only views ---------------------------------------------------------------

    @property
    def expert_values(self) -> tuple[float, ...]:
        """The fixed values proposed by the experts."""
        return self._values

    @property
    def alpha(self) -> float:
        """The switching rate of the Fixed-Share kernel."""
        return self._alpha

    @property
    def weights(self) -> tuple[float, ...]:
        """Current normalised expert weights ``p_t(i)``."""
        return tuple(self._weights)

    @property
    def iterations(self) -> int:
        """Number of :meth:`update` calls applied so far."""
        return self._iterations

    @property
    def cumulative_loss(self) -> float:
        """Sum over iterations of the learner's own (weighted-average) loss."""
        return self._cumulative_loss

    @property
    def best_expert_index(self) -> int:
        """Index of the expert with the highest current weight."""
        return max(range(len(self._weights)), key=self._weights.__getitem__)

    # -- prediction and update -----------------------------------------------------------

    def predict(self) -> float:
        """Current prediction: the weight-averaged expert value ``Σ p_t(i) T_i``."""
        return sum(w * v for w, v in zip(self._weights, self._values))

    def update(self, losses: Sequence[float]) -> float:
        """Apply one Fixed-Share update given per-expert losses.

        Returns the learner's own loss for this iteration, defined as the
        weight-averaged expert loss (used for diagnostics and by Learn-α,
        where the analogous quantity appears as ``L(α_j, t)``).
        """
        if len(losses) != len(self._values):
            raise ValueError(
                f"expected {len(self._values)} losses, got {len(losses)}"
            )
        if any(loss < 0 for loss in losses):
            raise ValueError("losses must be non-negative")

        own_loss = self.loss_of_mixture(losses)

        # Exponential-weights step followed by the switching kernel, computed
        # without materialising the full kernel matrix.
        boosted = [w * math.exp(-loss) for w, loss in zip(self._weights, losses)]
        total = sum(boosted)
        if total <= 0.0:
            # All losses astronomically large; fall back to uniform weights.
            self._weights = [1.0 / len(self._values)] * len(self._values)
        else:
            boosted = [b / total for b in boosted]
            n = len(boosted)
            if n == 1 or self._alpha == 0.0:  # repro-lint: allow[float-eq] reason=documented Learn-α reduction: α=0.0 must reduce exactly to Fixed-Share (property-tested)
                self._weights = boosted
            else:
                share = self._alpha / (n - 1)
                mass = sum(boosted)
                self._weights = [
                    (1.0 - self._alpha) * b + share * (mass - b) for b in boosted
                ]
                normalizer = sum(self._weights)
                self._weights = [w / normalizer for w in self._weights]

        self._iterations += 1
        self._cumulative_loss += own_loss
        return own_loss

    def loss_of_mixture(self, losses: Sequence[float]) -> float:
        """Mix loss ``-log Σ p_t(i) e^{-L(i,t)}`` of the current weights.

        This is the quantity the Learn-α layer uses as the loss of an
        α-expert (paper Equation 5).  It is bounded above by the weighted
        average loss and below by the best expert's loss.
        """
        if len(losses) != len(self._values):
            raise ValueError(
                f"expected {len(self._values)} losses, got {len(losses)}"
            )
        mixture = sum(
            w * math.exp(-loss) for w, loss in zip(self._weights, losses)
        )
        if mixture <= 0.0:
            return max(losses)
        return -math.log(mixture)

    def reset(self) -> None:
        """Restore uniform weights and clear the iteration counters."""
        self._weights = [1.0 / len(self._values)] * len(self._values)
        self._iterations = 0
        self._cumulative_loss = 0.0
