"""Online learning substrate: Fixed-Share experts, Learn-α, MakeActive loss."""

from .experts import FixedShareExperts, switching_kernel
from .learn_alpha import LearnAlpha, default_alpha_grid
from .loss import DEFAULT_GAMMA, MakeActiveLoss, aggregate_delay
from .predictors import (
    DecayedHistogramPredictor,
    ExponentialRatePredictor,
    GapPredictor,
    PredictiveMakeIdlePolicy,
    SlidingWindowPredictor,
)

__all__ = [
    "DEFAULT_GAMMA",
    "DecayedHistogramPredictor",
    "ExponentialRatePredictor",
    "GapPredictor",
    "PredictiveMakeIdlePolicy",
    "SlidingWindowPredictor",
    "FixedShareExperts",
    "LearnAlpha",
    "MakeActiveLoss",
    "aggregate_delay",
    "default_alpha_grid",
    "switching_kernel",
]
