"""Alternative inter-arrival-time predictors (ablation of MakeIdle's window).

The paper's MakeIdle models the next inter-arrival gap with the empirical
distribution of the last ``n`` gaps (a sliding window).  That choice is an
ablation axis: this module defines a small predictor interface plus three
implementations so the design decision can be evaluated head-to-head —

* :class:`SlidingWindowPredictor` — the paper's choice (uniform weight over
  the last ``n`` gaps);
* :class:`DecayedHistogramPredictor` — an exponentially-decayed histogram
  over log-spaced bins, which forgets old behaviour smoothly instead of
  abruptly;
* :class:`ExponentialRatePredictor` — a parametric memoryless model that
  tracks only a smoothed arrival rate (the cheapest possible predictor, and
  a useful null model: for truly Poisson traffic it is optimal, for bursty
  traffic it should lose to the empirical predictors).

:class:`PredictiveMakeIdlePolicy` is a drop-in MakeIdle variant that takes
any of these predictors, so the ablation benchmark can swap them without
touching the simulator.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque
from typing import Protocol, Sequence

from ..core.policy import RadioPolicy
from ..energy.model import TailEnergyModel
from ..rrc.profiles import CarrierProfile
from ..traces.packet import Packet, PacketTrace

__all__ = [
    "GapPredictor",
    "SlidingWindowPredictor",
    "DecayedHistogramPredictor",
    "ExponentialRatePredictor",
    "PredictiveMakeIdlePolicy",
]


class GapPredictor(Protocol):
    """Predicts the distribution of the next packet inter-arrival gap.

    A predictor is fed completed gaps through :meth:`observe` and exposes the
    learned distribution as a weighted sample set through
    :meth:`weighted_gaps`; the policy computes expected energies under those
    weights.  ``sample_count`` gates warm-up (a cold predictor must not make
    the policy deviate from the status quo).
    """

    def observe(self, gap: float) -> None:
        """Record one completed inter-arrival gap (seconds, non-negative)."""
        ...

    def reset(self) -> None:
        """Forget everything (start of a new run)."""
        ...

    @property
    def sample_count(self) -> int:
        """How many gaps have been absorbed since the last reset."""
        ...

    def weighted_gaps(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Return ``(gaps, weights)`` describing the predicted distribution.

        Weights are positive and need not be normalised; an empty pair means
        the predictor has nothing to say yet.
        """
        ...


class SlidingWindowPredictor:
    """The paper's predictor: uniform weights over the last ``n`` gaps."""

    def __init__(self, window_size: int = 100) -> None:
        if window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {window_size}")
        self._window_size = window_size
        self._gaps: deque[float] = deque(maxlen=window_size)
        self._seen = 0

    @property
    def window_size(self) -> int:
        """Maximum number of gaps retained."""
        return self._window_size

    @property
    def sample_count(self) -> int:
        return self._seen

    def observe(self, gap: float) -> None:
        if gap < 0:
            raise ValueError(f"gap must be non-negative, got {gap}")
        self._gaps.append(gap)
        self._seen += 1

    def reset(self) -> None:
        self._gaps.clear()
        self._seen = 0

    def weighted_gaps(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        gaps = tuple(self._gaps)
        return gaps, tuple(1.0 for _ in gaps)


class DecayedHistogramPredictor:
    """Exponentially-decayed histogram of gaps over log-spaced bins.

    Every observation multiplies all existing bin masses by ``decay`` and
    adds one unit of mass to the bin containing the new gap, so the
    predictor's memory fades smoothly with a half-life of roughly
    ``log(0.5)/log(decay)`` observations.
    """

    def __init__(
        self,
        decay: float = 0.98,
        min_gap: float = 0.01,
        max_gap: float = 600.0,
        bins_per_decade: int = 8,
    ) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        if min_gap <= 0 or max_gap <= min_gap:
            raise ValueError("require 0 < min_gap < max_gap")
        if bins_per_decade < 1:
            raise ValueError("bins_per_decade must be >= 1")
        self._decay = decay
        self._min_gap = min_gap
        self._max_gap = max_gap
        decades = math.log10(max_gap / min_gap)
        count = max(2, int(math.ceil(decades * bins_per_decade)) + 1)
        ratio = (max_gap / min_gap) ** (1.0 / (count - 1))
        self._edges = tuple(min_gap * ratio**i for i in range(count))
        # underflow bin + one per edge + a true overflow bin, so gaps past
        # max_gap never pollute the last in-range bin's mass.
        self._masses = [0.0] * (count + 2)
        self._seen = 0

    @property
    def decay(self) -> float:
        """Per-observation decay factor applied to old mass."""
        return self._decay

    @property
    def bin_edges(self) -> tuple[float, ...]:
        """Upper edges of the histogram bins (log-spaced)."""
        return self._edges

    @property
    def sample_count(self) -> int:
        return self._seen

    def observe(self, gap: float) -> None:
        if gap < 0:
            raise ValueError(f"gap must be non-negative, got {gap}")
        self._masses = [m * self._decay for m in self._masses]
        self._masses[self._bin_index(gap)] += 1.0
        self._seen += 1

    def reset(self) -> None:
        self._masses = [0.0] * len(self._masses)
        self._seen = 0

    def weighted_gaps(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        gaps: list[float] = []
        weights: list[float] = []
        for index, mass in enumerate(self._masses):
            if mass <= 0.0:
                continue
            gaps.append(self._bin_representative(index))
            weights.append(mass)
        return tuple(gaps), tuple(weights)

    def _bin_index(self, gap: float) -> int:
        if gap < self._min_gap:
            return 0
        if gap > self._edges[-1]:
            return len(self._masses) - 1  # overflow: beyond the last edge
        return bisect_left(self._edges, gap) + 1

    def _bin_representative(self, index: int) -> float:
        if index == 0:
            return self._min_gap / 2.0
        if index > len(self._edges):
            # Overflow bin: extend the log-spaced grid by one geometric step
            # so the representative sits beyond max_gap, mirroring how every
            # in-range bin uses the geometric mean of its edges.
            return self._edges[-1] * math.sqrt(self._edges[-1] / self._edges[-2])
        lower = self._min_gap if index == 1 else self._edges[index - 2]
        upper = self._edges[index - 1]
        return math.sqrt(lower * upper)


class ExponentialRatePredictor:
    """Parametric memoryless predictor tracking a smoothed arrival rate.

    The gap distribution is taken to be exponential with mean equal to an
    exponentially-weighted moving average of the observed gaps; the weighted
    sample set is a deterministic quantile grid of that exponential, so the
    policy's expectation reduces to numerical integration over it.
    """

    def __init__(self, smoothing: float = 0.1, quantile_points: int = 16) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if quantile_points < 4:
            raise ValueError("quantile_points must be >= 4")
        self._smoothing = smoothing
        self._quantile_points = quantile_points
        self._mean_gap: float | None = None
        self._seen = 0

    @property
    def mean_gap(self) -> float | None:
        """Current EWMA of the observed gaps (``None`` before any observation)."""
        return self._mean_gap

    @property
    def sample_count(self) -> int:
        return self._seen

    def observe(self, gap: float) -> None:
        if gap < 0:
            raise ValueError(f"gap must be non-negative, got {gap}")
        if self._mean_gap is None:
            self._mean_gap = gap
        else:
            self._mean_gap += self._smoothing * (gap - self._mean_gap)
        self._seen += 1

    def reset(self) -> None:
        self._mean_gap = None
        self._seen = 0

    def weighted_gaps(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        if self._mean_gap is None or self._mean_gap <= 0:
            return (), ()
        count = self._quantile_points
        gaps = tuple(
            -self._mean_gap * math.log(1.0 - (i + 0.5) / count) for i in range(count)
        )
        return gaps, tuple(1.0 for _ in gaps)


class PredictiveMakeIdlePolicy(RadioPolicy):
    """MakeIdle with a pluggable gap predictor (ablation of the window choice).

    The decision logic is identical to
    :class:`~repro.core.makeidle.MakeIdlePolicy` — pick the waiting time in
    ``[0, t_threshold]`` with the largest expected saving over the status quo
    — but expectations are taken under the predictor's weighted gap samples
    instead of the raw sliding window.
    """

    def __init__(
        self,
        predictor: GapPredictor,
        candidate_count: int = 24,
        min_samples: int = 5,
        name: str | None = None,
    ) -> None:
        if candidate_count < 2:
            raise ValueError(f"candidate_count must be >= 2, got {candidate_count}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self._predictor = predictor
        self._candidate_count = candidate_count
        self._min_samples = min_samples
        self._model: TailEnergyModel | None = None
        self._candidates: tuple[float, ...] = ()
        self._last_packet_time: float | None = None
        self.name = name or f"makeidle[{type(predictor).__name__}]"

    @property
    def predictor(self) -> GapPredictor:
        """The gap predictor driving the decisions."""
        return self._predictor

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        # Only the profile is read — streaming runs call bind_profile()
        # directly and never materialise a trace.
        self.bind_profile(profile)

    def bind_profile(self, profile: CarrierProfile) -> None:
        self._model = TailEnergyModel(profile)
        threshold = self._model.t_threshold
        step = threshold / (self._candidate_count - 1)
        self._candidates = tuple(i * step for i in range(self._candidate_count))

    def reset(self) -> None:
        self._predictor.reset()
        self._last_packet_time = None

    def observe_packet(self, time: float, packet: Packet) -> None:
        if self._last_packet_time is not None:
            gap = time - self._last_packet_time
            if gap >= 0:
                self._predictor.observe(gap)
        self._last_packet_time = time

    def dormancy_wait(self, now: float) -> float | None:
        model = self._model
        if model is None:
            raise RuntimeError(
                "PredictiveMakeIdlePolicy.prepare() must be called before use"
            )
        if self._predictor.sample_count < self._min_samples:
            return None
        gaps, weights = self._predictor.weighted_gaps()
        if not gaps:
            return None
        wait, gain = _best_wait(model, self._candidates, gaps, weights)
        return wait if gain > 0 else None


def _best_wait(
    model: TailEnergyModel,
    candidates: Sequence[float],
    gaps: Sequence[float],
    weights: Sequence[float],
) -> tuple[float, float]:
    """Weighted version of MakeIdle's argmax over candidate waiting times."""
    total_weight = sum(weights)
    if total_weight <= 0:
        return 0.0, 0.0
    status_quo = (
        sum(w * model.tail_energy(g) for g, w in zip(gaps, weights)) / total_weight
    )
    switch_cost = model.switch_energy
    best_wait = candidates[0]
    best_gain = float("-inf")
    for wait in candidates:
        cost = 0.0
        for gap, weight in zip(gaps, weights):
            if gap <= wait:
                cost += weight * model.wait_energy(gap)
            else:
                cost += weight * (model.wait_energy(wait) + switch_cost)
        gain = status_quo - cost / total_weight
        if gain > best_gain:
            best_gain = gain
            best_wait = wait
    return best_wait, best_gain
