"""The built-in scenario library.

Five presets span the axes the scenario subsystem opens:

* ``uniform`` — one homogeneous cohort, no shaping: the scenario-layer
  rendering of the pre-scenario synthetic cell (a useful control);
* ``office_day`` — a heterogeneous working-hours cell under the
  ``office_hours`` diurnal shape;
* ``evening_peak`` — a residential cell peaking in the evening;
* ``mixed_policy`` — a heterogeneous cell where cohorts run *different*
  device-side schemes (legacy status-quo handsets sharing the cell with
  MakeIdle+MakeActive adopters), the deployment-transition question the
  paper's §8 leaves open;
* ``learning_rollout`` — the policy-tournament cell: a Learn-α MakeActive
  fleet and a decayed-histogram MakeIdle pilot cohort sharing the cell
  with a control cohort on the sweep's policy axis.

Presets are ordinary :class:`~repro.scenarios.scenario.Scenario` values —
copy one with :func:`dataclasses.replace` to make variants — and
``repro-rrc sweep --cell --scenario NAME`` accepts any of these names.
"""

from __future__ import annotations

from ..api.spec import PolicySpec
from .archetypes import get_archetype
from .scenario import Cohort, Scenario
from .shapes import EVENING_PEAK, OFFICE_HOURS

__all__ = [
    "SCENARIO_PRESETS",
    "get_scenario",
    "scenario_names",
]


_UNIFORM = Scenario(
    name="uniform",
    description="homogeneous background-chatter population, no shaping",
    cohorts=(Cohort(archetype=get_archetype("background_chatter")),),
)

_OFFICE_DAY = Scenario(
    name="office_day",
    description="office cell: workers + streamers + quiet phones, "
                "office-hours diurnal shape",
    cohorts=(
        Cohort(archetype=get_archetype("office_worker"), weight=0.5),
        Cohort(archetype=get_archetype("heavy_streamer"), weight=0.2),
        Cohort(archetype=get_archetype("idle_messenger"), weight=0.3),
    ),
    shape=OFFICE_HOURS,
)

_EVENING_PEAK = Scenario(
    name="evening_peak",
    description="residential cell peaking in the evening",
    cohorts=(
        Cohort(archetype=get_archetype("heavy_streamer"), weight=0.35),
        Cohort(archetype=get_archetype("background_chatter"), weight=0.40),
        Cohort(archetype=get_archetype("idle_messenger"), weight=0.25),
    ),
    shape=EVENING_PEAK,
)

_MIXED_POLICY = Scenario(
    name="mixed_policy",
    description="deployment transition: legacy status-quo handsets, "
                "MakeIdle+MakeActive adopters, and a cohort on the "
                "sweep's policy axis",
    cohorts=(
        Cohort(
            name="legacy_fleet",
            archetype=get_archetype("background_chatter"),
            weight=0.45,
            policy=PolicySpec(scheme="status_quo"),
        ),
        Cohort(
            name="early_adopters",
            archetype=get_archetype("heavy_streamer"),
            weight=0.25,
            policy=PolicySpec(scheme="makeidle+makeactive_learn",
                              window_size=100),
        ),
        Cohort(
            name="standard",
            archetype=get_archetype("office_worker"),
            weight=0.30,
            # No override: this cohort runs whatever the policy axis says.
        ),
    ),
)

_LEARNING_ROLLOUT = Scenario(
    name="learning_rollout",
    description="policy tournament cell: Learn-α MakeActive adopters, "
                "histogram-predictor MakeIdle pilots, and a cohort on the "
                "sweep's policy axis",
    cohorts=(
        Cohort(
            name="learn_alpha_fleet",
            archetype=get_archetype("background_chatter"),
            weight=0.4,
            policy=PolicySpec(scheme="makeidle+makeactive_learn",
                              window_size=100),
        ),
        Cohort(
            name="hist_pilots",
            archetype=get_archetype("idle_messenger"),
            weight=0.3,
            policy=PolicySpec(scheme="makeidle_hist"),
        ),
        Cohort(
            name="control",
            archetype=get_archetype("office_worker"),
            weight=0.3,
            # No override: this cohort runs whatever the policy axis says.
        ),
    ),
)

#: The preset library, keyed by scenario name.
SCENARIO_PRESETS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        _UNIFORM, _OFFICE_DAY, _EVENING_PEAK, _MIXED_POLICY,
        _LEARNING_ROLLOUT,
    )
}


def scenario_names() -> tuple[str, ...]:
    """The preset names, sorted (for error messages and CLI help)."""
    return tuple(sorted(SCENARIO_PRESETS))


def get_scenario(name: str) -> Scenario:
    """Look up a preset scenario by name, with a helpful error."""
    try:
        return SCENARIO_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available presets: "
            f"{', '.join(scenario_names())}"
        ) from None
