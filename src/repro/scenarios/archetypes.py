"""Device archetypes: the "who" of a scenario population.

An archetype bundles what one kind of subscriber's phone does on the
network: which application mix it runs (merged into one multi-flow
workload, like the user-day traces of Section 6.2) and how intense its
traffic is relative to the paper's per-application profiles.  Scenario
cohorts (:mod:`repro.scenarios.scenario`) weight archetypes into
heterogeneous populations and may additionally override the device-side
RRC policy per cohort.

Intensity is a session-rate multiplier applied on top of any diurnal
shape: an ``idle_messenger`` at intensity 0.35 starts about a third as
many IM sessions as the paper's IM profile, with identical burst shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "ARCHETYPES",
    "DeviceArchetype",
    "get_archetype",
]


@dataclass(frozen=True)
class DeviceArchetype:
    """One kind of device: an application mix at a traffic intensity."""

    name: str
    apps: tuple[str, ...]
    intensity: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an archetype requires a name")
        if not self.apps:
            raise ValueError(f"archetype {self.name!r} requires at least one app")
        if not self.intensity > 0:
            raise ValueError(
                f"archetype {self.name!r} intensity must be positive, "
                f"got {self.intensity}"
            )
        from ..traces.synthetic import APPLICATION_PROFILES

        for app in self.apps:
            if app.lower() not in APPLICATION_PROFILES:
                raise ValueError(
                    f"archetype {self.name!r}: unknown application {app!r}; "
                    f"known: {sorted(APPLICATION_PROFILES)}"
                )
        object.__setattr__(self, "apps", tuple(self.apps))

    @property
    def fingerprint(self) -> tuple:
        """Stable cache-key component identifying the workload this builds.

        The name stays out: two archetypes generating identical traffic
        may share cached results whatever they are called.
        """
        return ("archetype", self.apps, self.intensity)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (self-contained — no registry reference)."""
        return {
            "name": self.name,
            "apps": list(self.apps),
            "intensity": self.intensity,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeviceArchetype":
        """Re-create an archetype from :meth:`to_dict` output."""
        payload = dict(data)
        payload["apps"] = tuple(payload.get("apps", ()))
        return cls(**payload)


#: Built-in archetype library, spanning the chatty-to-quiet spectrum the
#: paper's user traces exhibit.
ARCHETYPES: dict[str, DeviceArchetype] = {
    archetype.name: archetype
    for archetype in (
        DeviceArchetype(
            name="heavy_streamer",
            apps=("social", "news", "microblog"),
            intensity=1.5,
            description="foreground-heavy user: feeds, pictures, tweets",
        ),
        DeviceArchetype(
            name="background_chatter",
            apps=("im", "email"),
            intensity=1.0,
            description="phone in the pocket: IM heartbeats + mail sync",
        ),
        DeviceArchetype(
            name="idle_messenger",
            apps=("im",),
            intensity=0.35,
            description="mostly-quiet device with sparse IM keepalives",
        ),
        DeviceArchetype(
            name="office_worker",
            apps=("email", "im", "news"),
            intensity=1.0,
            description="work phone: mail, chat, occasional headlines",
        ),
        DeviceArchetype(
            name="casual_gamer",
            apps=("game", "im"),
            intensity=0.8,
            description="offline game ad refreshes plus light chat",
        ),
    )
}


def get_archetype(name: str) -> DeviceArchetype:
    """Look up a built-in archetype by name, with a helpful error."""
    try:
        return ARCHETYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown device archetype {name!r}; known: {sorted(ARCHETYPES)}"
        ) from None
