"""Diurnal traffic shapes: time-of-day rate envelopes for scenario workloads.

Real cell traffic ebbs and flows over the day — office cells peak during
working hours, residential cells in the evening — and the paper's savings
depend on *when* devices talk as much as on who they are.  A
:class:`DiurnalShape` is a declarative, serialisable description of that
ebb and flow: a piecewise-constant multiplier over the hours of a
(wrapping) period, applied to the session arrival rate of every shaped
generator (see ``rate=`` in
:func:`repro.traces.synthetic.generate_application_trace` and
``envelope=`` in :func:`repro.traces.streaming.stream_application_packets`).

Shapes are *multipliers*, not absolute rates: ``1.0`` leaves an
application's statistical profile untouched, ``2.0`` doubles its session
arrival rate around that hour, ``0.25`` quiets it to a quarter.  A shape
with a single segment at ``1.0`` is therefore exactly the unshaped
workload in distribution.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "DIURNAL_SHAPES",
    "DiurnalShape",
    "FLAT",
    "EVENING_PEAK",
    "OFFICE_HOURS",
    "get_shape",
]

#: Seconds per envelope period (one day).
_DAY_S = 86_400.0


@dataclass(frozen=True)
class DiurnalShape:
    """A piecewise-constant time-of-day session-rate envelope.

    ``segments`` is a tuple of ``(start_hour, multiplier)`` pairs with
    strictly increasing start hours in ``[0, 24)``; each multiplier holds
    from its start hour until the next segment's, and the envelope wraps —
    the stretch before the first segment carries the *last* segment's
    multiplier, so a shape need not begin at hour 0.
    """

    name: str
    segments: tuple[tuple[float, float], ...]
    period_s: float = _DAY_S

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a diurnal shape requires at least one segment")
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        period_hours = self.period_s / 3600.0
        previous = None
        for start_hour, multiplier in self.segments:
            if not 0.0 <= start_hour < period_hours:
                raise ValueError(
                    f"segment start {start_hour} outside [0, {period_hours})"
                )
            if previous is not None and start_hour <= previous:
                raise ValueError(
                    "segment start hours must be strictly increasing, got "
                    f"{start_hour} after {previous}"
                )
            if not multiplier > 0:
                raise ValueError(
                    f"rate multipliers must be positive, got {multiplier} at "
                    f"hour {start_hour} (use a small value for quiet hours)"
                )
            previous = start_hour
        # Normalise to plain tuples so equality/fingerprints are stable
        # whatever sequence types the caller handed in.
        object.__setattr__(
            self,
            "segments",
            tuple((float(h), float(m)) for h, m in self.segments),
        )
        # rate_at runs once per drawn session gap for every shaped device;
        # precompute the bisect key so the hot path allocates nothing.
        object.__setattr__(
            self, "_starts", tuple(h for h, _ in self.segments)
        )

    @property
    def fingerprint(self) -> tuple:
        """Stable cache-key component identifying the envelope's behaviour."""
        return ("shape", self.segments, self.period_s)

    def rate_at(self, time_s: float) -> float:
        """The rate multiplier in effect at ``time_s`` seconds of stream time."""
        hour = (time_s % self.period_s) / 3600.0
        index = bisect_right(self._starts, hour) - 1
        return self.segments[index][1]  # index -1 wraps to the last segment

    #: A shape is directly usable as a generator ``rate=`` / ``envelope=``.
    __call__ = rate_at

    @property
    def mean_rate(self) -> float:
        """Time-average multiplier over one period (duration-weighted)."""
        hours = self.period_s / 3600.0
        total = 0.0
        for index, (start, multiplier) in enumerate(self.segments):
            next_start = (
                self.segments[index + 1][0]
                if index + 1 < len(self.segments) else hours + self.segments[0][0]
            )
            total += (next_start - start) * multiplier
        return total / hours

    def scaled(self, factor: float) -> "DiurnalShape":
        """Return a copy with every multiplier scaled by ``factor``."""
        if not factor > 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return DiurnalShape(
            name=self.name,
            segments=tuple((h, m * factor) for h, m in self.segments),
            period_s=self.period_s,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "segments": [[h, m] for h, m in self.segments],
            "period_s": self.period_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DiurnalShape":
        """Re-create a shape from :meth:`to_dict` output."""
        return cls(
            name=str(data.get("name", "")),
            segments=tuple(
                (float(h), float(m)) for h, m in data.get("segments", ())
            ),
            period_s=float(data.get("period_s", _DAY_S)),
        )


#: No shaping: the identity envelope.
FLAT = DiurnalShape(name="flat", segments=((0.0, 1.0),))

#: Office-cell day: quiet night, morning ramp, working-hours peak with a
#: lunch dip, evening wind-down.
OFFICE_HOURS = DiurnalShape(
    name="office_hours",
    segments=(
        (0.0, 0.2),    # night
        (7.0, 0.8),    # commute ramp-up
        (9.0, 1.6),    # morning peak
        (12.0, 1.1),   # lunch dip
        (13.0, 1.5),   # afternoon
        (17.0, 0.7),   # commute out
        (20.0, 0.35),  # evening
    ),
)

#: Residential-cell day: daytime trickle, strong evening peak.
EVENING_PEAK = DiurnalShape(
    name="evening_peak",
    segments=(
        (0.0, 0.3),    # late night
        (2.0, 0.15),   # dead of night
        (8.0, 0.6),    # daytime background
        (18.0, 1.3),   # after work
        (20.0, 1.9),   # prime time
        (23.0, 0.8),   # winding down
    ),
)

#: Built-in shapes addressable by name (scenario serialisation keeps the
#: full segment list, so these are conveniences, not a registry contract).
DIURNAL_SHAPES: dict[str, DiurnalShape] = {
    shape.name: shape for shape in (FLAT, OFFICE_HOURS, EVENING_PEAK)
}


def get_shape(name: str) -> DiurnalShape:
    """Look up a built-in shape by name, with a helpful error."""
    try:
        return DIURNAL_SHAPES[name]
    except KeyError:
        raise KeyError(
            f"unknown diurnal shape {name!r}; known: {sorted(DIURNAL_SHAPES)}"
        ) from None
