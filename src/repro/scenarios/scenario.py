"""Scenarios: declarative heterogeneous cell populations.

A :class:`Scenario` composes weighted :class:`Cohort`\\ s of device
archetypes — each an application mix at a traffic intensity, optionally
running its *own* device-side RRC policy — under an optional diurnal
traffic shape.  It is the workload half of a cell sweep:
:class:`~repro.api.cells.CellSpec` carries one, and everything downstream
(plan expansion, caching, sharded execution, per-cohort reporting) keys
off the scenario's stable :attr:`Scenario.fingerprint`.

Determinism and sharding
------------------------

Everything a scenario decides is a pure function of ``(scenario, total
devices, population seed, global device index)``:

* cohort membership — contiguous index blocks sized by largest-remainder
  apportionment of the cohort weights (:meth:`Scenario.cohort_sizes`);
* per-device workload seeds — hashed, ``crc32("scenario/<seed>/<index>")``,
  per the substitution rule established in ``docs/DESIGN.md`` (linear
  seed strides collide across devices at scale);
* the traffic envelope — ``intensity × shape(t)``, evaluated at absolute
  stream time.

Because no decision depends on which devices happen to share a process, a
scenario population built shard by shard is identical to the
whole-population build, and sharded cell runs stay byte-identical to the
single-process reference (asserted by the property tests).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..api.spec import PolicySpec
from ..traces.packet import Packet
from ..traces.streaming import stream_user_day_packets
from .archetypes import DeviceArchetype
from .shapes import DiurnalShape

__all__ = [
    "Cohort",
    "Scenario",
]


def _device_seed(seed: int, index: int) -> int:
    """Hashed per-device workload seed (see module docstring)."""
    return zlib.crc32(f"scenario/{seed}/{index}".encode("ascii"))


@dataclass(frozen=True)
class Cohort:
    """A weighted slice of a scenario population.

    ``weight`` is relative — cohort device counts are apportioned from the
    normalised weights.  ``policy`` optionally overrides the sweep's
    device-side scheme for this cohort only (a *mixed-policy* cell: e.g.
    legacy handsets on the status quo sharing the cell with MakeIdle
    adopters); ``None`` inherits the policy axis value of the run.

    An override cannot inherit a plan-level window size — the scenario is
    serialised and fingerprinted independently of any plan, so a
    late-resolved window would desynchronise the built policy from the
    cache key.  An override that leaves ``window_size`` unset is
    therefore pinned to the library default (100) at construction; set
    it explicitly per cohort for anything else.
    """

    archetype: DeviceArchetype
    weight: float = 1.0
    policy: PolicySpec | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.weight > 0:
            raise ValueError(
                f"cohort weight must be positive, got {self.weight}"
            )
        if self.policy is not None:
            object.__setattr__(self, "policy", self.policy.resolved(100))

    @property
    def label(self) -> str:
        """The cohort's reporting label (defaults to the archetype name)."""
        return self.name or self.archetype.name

    @property
    def fingerprint(self) -> tuple:
        """Stable cache-key component: what this cohort's devices do."""
        return (
            "cohort",
            self.label,
            self.archetype.fingerprint,
            self.weight,
            self.policy.key if self.policy is not None else None,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "archetype": self.archetype.to_dict(),
            "weight": self.weight,
            "policy": self.policy.to_dict() if self.policy is not None else None,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Cohort":
        """Re-create a cohort from :meth:`to_dict` output."""
        policy = data.get("policy")
        return cls(
            archetype=DeviceArchetype.from_dict(data["archetype"]),
            weight=float(data.get("weight", 1.0)),
            policy=PolicySpec.from_dict(policy) if policy is not None else None,
            name=str(data.get("name", "")),
        )


@dataclass(frozen=True)
class Scenario:
    """A named, serialisable description of a heterogeneous population.

    ``shape`` applies diurnal traffic shaping to every cohort (each
    archetype's intensity multiplies it); ``None`` leaves the archetypes'
    stationary profiles unshaped.
    """

    name: str
    cohorts: tuple[Cohort, ...]
    shape: DiurnalShape | None = None
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario requires a name")
        if not self.cohorts:
            raise ValueError(
                f"scenario {self.name!r} requires at least one cohort"
            )
        object.__setattr__(self, "cohorts", tuple(self.cohorts))
        labels = [cohort.label for cohort in self.cohorts]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"scenario {self.name!r} has duplicate cohort labels "
                f"{sorted(labels)}; name the cohorts apart"
            )

    @property
    def has_policy_overrides(self) -> bool:
        """Whether any cohort runs its own device-side policy.

        Mixed-policy populations issue fast-dormancy requests even when
        the sweep's policy axis says ``status_quo``, so the cell cache
        must *not* collapse their runs across base-station dormancy
        policies (see :attr:`repro.api.cells.CellRunSpec.cache_key`).
        """
        return any(cohort.policy is not None for cohort in self.cohorts)

    @property
    def fingerprint(self) -> tuple:
        """Stable cache-key component identifying the population behaviour.

        The scenario *name* stays out — two identically composed scenarios
        build identical populations and may share cached results — but
        cohort labels are in (via the cohort fingerprints) because they
        partition the reported per-cohort records.
        """
        return (
            "scenario",
            tuple(cohort.fingerprint for cohort in self.cohorts),
            self.shape.fingerprint if self.shape is not None else None,
        )

    # -- deterministic population layout ---------------------------------------------

    def cohort_sizes(self, devices: int) -> list[int]:
        """Device counts per cohort: largest-remainder apportionment.

        Deterministic — fractional remainders are broken by largest
        remainder, then by cohort order — and sums to ``devices`` exactly.
        A low-weight cohort may receive zero devices in a small cell.
        """
        if devices < 1:
            raise ValueError(f"devices must be >= 1, got {devices}")
        total_weight = sum(cohort.weight for cohort in self.cohorts)
        quotas = [devices * cohort.weight / total_weight for cohort in self.cohorts]
        sizes = [int(quota) for quota in quotas]
        shortfall = devices - sum(sizes)
        by_remainder = sorted(
            range(len(quotas)),
            key=lambda i: (sizes[i] - quotas[i], i),
        )
        for i in by_remainder[:shortfall]:
            sizes[i] += 1
        return sizes

    def cohort_at(self, index: int, devices: int) -> Cohort:
        """The cohort owning global device ``index`` of a ``devices``-cell.

        Cohorts occupy contiguous index blocks in declaration order, so
        membership is shard-independent: any contiguous device slice sees
        exactly the cohorts a whole-population build would give it.
        """
        if not 0 <= index < devices:
            raise ValueError(
                f"device index {index} outside [0, {devices})"
            )
        offset = 0
        for cohort, size in zip(self.cohorts, self.cohort_sizes(devices)):
            offset += size
            if index < offset:
                return cohort
        raise AssertionError("unreachable: sizes sum to devices")

    # -- workload construction --------------------------------------------------------

    def device_envelope(self, cohort: Cohort):
        """The traffic envelope of one cohort: intensity × diurnal shape.

        Returns ``None`` when the cohort is unshaped at unit intensity, so
        the generators take their exact unshaped path.
        """
        intensity = cohort.archetype.intensity
        if self.shape is None:
            if intensity == 1.0:  # repro-lint: allow[float-eq] reason=exact unshaped passthrough: intensity 1.0 must take the byte-identical ungated path (DESIGN.md §3.1)
                return None
            return lambda time_s: intensity
        shape = self.shape
        if intensity == 1.0:  # repro-lint: allow[float-eq] reason=exact unshaped passthrough: intensity 1.0 must take the byte-identical ungated path (DESIGN.md §3.1)
            return shape
        return lambda time_s: intensity * shape.rate_at(time_s)

    def cohort_stream(
        self,
        cohort: Cohort,
        index: int,
        duration_s: float,
        seed: int,
        chunk_s: float,
    ) -> Iterator[Packet]:
        """The lazy packet workload of device ``index`` within ``cohort``.

        A merged multi-application stream (flow ids remapped per app, as
        user-day traces are built) under the cohort's envelope, seeded by
        the hashed per-device derivation — a pure function of the
        arguments, so shards rebuild exactly the devices a
        whole-population build would.  Population builders walk the
        cohort blocks (:meth:`cohort_sizes`) and call this per device;
        one-off callers resolve membership first with :meth:`cohort_at`.
        """
        return stream_user_day_packets(
            cohort.archetype.apps,
            duration=duration_s,
            seed=_device_seed(seed, index),
            chunk_s=chunk_s,
            envelope=self.device_envelope(cohort),
        )

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (self-contained: archetypes inline)."""
        return {
            "name": self.name,
            "description": self.description,
            "cohorts": [cohort.to_dict() for cohort in self.cohorts],
            "shape": self.shape.to_dict() if self.shape is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Re-create a scenario from :meth:`to_dict` output."""
        shape = data.get("shape")
        return cls(
            name=str(data.get("name", "")),
            description=str(data.get("description", "")),
            cohorts=tuple(
                Cohort.from_dict(cohort) for cohort in data.get("cohorts", ())
            ),
            shape=DiurnalShape.from_dict(shape) if shape is not None else None,
        )
