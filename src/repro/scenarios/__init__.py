"""Scenario library: heterogeneous populations, diurnal shaping, mixed policies.

Real cells are not 10 000 copies of one phone.  This package describes
*who* is in a cell and *when* they talk, declaratively and serialisably:

* :class:`DeviceArchetype` — one kind of device: an application mix at a
  traffic intensity (``heavy_streamer``, ``background_chatter``,
  ``idle_messenger``, ...);
* :class:`DiurnalShape` — a piecewise-constant time-of-day session-rate
  envelope (office hours, evening peak), applied to the streamed packet
  generators in :mod:`repro.traces.streaming`;
* :class:`Cohort` / :class:`Scenario` — weighted archetype cohorts, each
  optionally running its *own* device-side RRC policy (mixed-policy
  cells), composed into one digest-stable population description;
* :data:`SCENARIO_PRESETS` — the built-in library (``uniform``,
  ``office_day``, ``evening_peak``, ``mixed_policy``), also reachable as
  ``repro-rrc sweep --cell --scenario NAME``.

A :class:`Scenario` plugs into the cell sweep lifecycle through
:class:`repro.api.cells.CellSpec` (``scenario=...``) and the plan-level
:meth:`repro.api.plan.ExperimentPlan.scenarios` axis; cell results then
report per-cohort energy/denial/switch breakdowns
(:meth:`repro.basestation.cell.CellResult.cohort_breakdown`).
"""

from .archetypes import ARCHETYPES, DeviceArchetype, get_archetype
from .presets import SCENARIO_PRESETS, get_scenario, scenario_names
from .scenario import Cohort, Scenario
from .shapes import (
    DIURNAL_SHAPES,
    EVENING_PEAK,
    FLAT,
    OFFICE_HOURS,
    DiurnalShape,
    get_shape,
)

__all__ = [
    "ARCHETYPES",
    "Cohort",
    "DIURNAL_SHAPES",
    "DeviceArchetype",
    "DiurnalShape",
    "EVENING_PEAK",
    "FLAT",
    "OFFICE_HOURS",
    "SCENARIO_PRESETS",
    "Scenario",
    "get_archetype",
    "get_scenario",
    "get_shape",
    "scenario_names",
]
