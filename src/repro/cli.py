"""Command-line interface for the library.

Installed as the ``repro-rrc`` console script (and runnable as
``python -m repro.cli``), the CLI exposes the most common workflows without
writing any Python:

* ``repro-rrc carriers`` — list the built-in carrier profiles (Table 2).
* ``repro-rrc simulate`` — run one workload under one or more schemes on one
  carrier and print the energy/switch/delay comparison.
* ``repro-rrc sweep`` — declare and execute a full workload × carrier ×
  scheme grid through :mod:`repro.api`, optionally on a process pool
  (``--jobs N``) and optionally from/to a JSON plan file.  With ``--cell``
  the grid sweeps a multi-device cell (population × carrier × device
  scheme × base-station dormancy policy) with streamed traces, so
  10k+-device cells run in bounded memory.
* ``repro-rrc apps`` — the per-application comparison of Figure 9.
* ``repro-rrc compare-carriers`` — the cross-carrier comparison of
  Figures 17/18 and Table 3.
* ``repro-rrc validate`` — the energy-estimator validation of Figure 8.
* ``repro-rrc trace-info`` — summarise a pcap/tcpdump capture.

Every command prints plain text to stdout; ``--csv PATH`` additionally
writes machine-readable output where it makes sense, and ``sweep --json``
emits the full record set as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.experiments import (
    application_savings,
    carrier_comparison,
    run_schemes,
)
from .analysis.figures import format_table
from .config import KNOWN_SCHEMES
from .energy.validation import run_validation
from .metrics.savings import savings_table
from .rrc.profiles import CARRIER_ORDER, CARRIER_PROFILES, get_profile
from .reporting.render import write_csv
from .traces.pcap import read_pcap
from .traces.stats import summarize_trace
from .traces.synthetic import APPLICATION_NAMES, generate_application_trace
from .traces.tcpdump import read_tcpdump
from .traces.users import user_trace

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-rrc`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-rrc",
        description=(
            "Traffic-aware 3G/LTE RRC energy saving "
            "(reproduction of Deng & Balakrishnan, CoNEXT 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("carriers", help="list the built-in carrier profiles")

    simulate = sub.add_parser(
        "simulate", help="simulate one workload under the standard schemes"
    )
    simulate.add_argument(
        "--carrier", default="att_hspa", choices=sorted(CARRIER_PROFILES)
    )
    source = simulate.add_mutually_exclusive_group()
    source.add_argument(
        "--app", choices=APPLICATION_NAMES, help="synthetic application workload"
    )
    source.add_argument("--user", type=int, help="synthetic user id (with --population)")
    source.add_argument("--pcap", help="path to a pcap capture")
    source.add_argument("--tcpdump", help="path to a tcpdump text log")
    simulate.add_argument(
        "--population", default="verizon_3g", help="user population for --user"
    )
    simulate.add_argument("--duration", type=float, default=3600.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--window-size", type=int, default=100)
    simulate.add_argument("--csv", help="also write the comparison as CSV")

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative workload x carrier x scheme grid (repro.api)",
    )
    sweep_source = sweep.add_mutually_exclusive_group()
    sweep_source.add_argument(
        "--apps", help="comma-separated synthetic application workloads"
    )
    sweep_source.add_argument(
        "--population", help="user population (sweeps its users; see --users)"
    )
    sweep_source.add_argument(
        "--plan", help="load the whole plan from a JSON file (see --save-plan)"
    )
    sweep.add_argument(
        "--cell", action="store_true",
        help="sweep a multi-device cell (streamed traces) instead of single UEs",
    )
    sweep.add_argument(
        "--metro", default=None,
        help="comma-separated metro topology presets (commuter_2cell, "
             "metro_4cell, ...): sweep multi-cell metros with mobility and "
             "mid-stream handover; composes with --devices, --shards "
             "(per-cell), --carriers and --schemes",
    )
    sweep.add_argument(
        "--devices", type=int, default=None,
        help="devices per cell for --cell (default 100; workloads cycle "
             "over --apps)",
    )
    sweep.add_argument(
        "--scenario", default=None,
        help="comma-separated scenario presets for --cell (heterogeneous "
             "cohort populations with diurnal shaping; e.g. uniform, "
             "office_day, evening_peak, mixed_policy); replaces --apps",
    )
    sweep.add_argument(
        "--dormancy", default=None,
        help="comma-separated base-station dormancy policies for --cell "
             "(accept_all, reject_all, rate_limited, load_aware; "
             "default accept_all)",
    )
    sweep.add_argument(
        "--shards", type=int, default=None,
        help="partition each --cell run into this many device shards, "
             "executed on worker processes (implies a process pool of "
             "--jobs workers, or one worker per shard when --jobs is 1)",
    )
    sweep.add_argument(
        "--engine", default=None,
        help="kernel backend for --cell/--metro runs: scalar (per-event "
             "reference) or vector (numpy batch backend; byte-identical "
             "results, default scalar)",
    )
    sweep.add_argument(
        "--users", type=int, nargs="*",
        help="user ids within --population (default: the whole roster)",
    )
    sweep.add_argument(
        "--carriers", default="att_hspa",
        help="comma-separated carrier keys or aliases (default att_hspa)",
    )
    sweep.add_argument(
        "--schemes", default=None,
        help="comma-separated schemes; status_quo is required for "
             "normalisation (default status_quo,makeidle,oracle — without "
             "oracle under --cell, whose streamed traces cannot feed "
             "offline policies)",
    )
    sweep.add_argument("--duration", type=float, default=1800.0,
                       help="seconds per application trace / per user-day")
    sweep.add_argument("--seeds", type=int, nargs="*",
                       help="repeat the grid once per seed")
    sweep.add_argument("--window-size", type=int, default=100)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial)")
    sweep.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist results to a content-addressed disk cache under DIR, "
             "so repeated identical sweeps (even across processes) load "
             "instead of re-simulating; default DIR is $REPRO_RRC_CACHE_DIR "
             "or ~/.cache/repro-rrc when the env var enables the tier",
    )
    sweep.add_argument(
        "--no-disk-cache", action="store_true",
        help="ignore $REPRO_RRC_CACHE_DIR and run without the persistent "
             "result cache",
    )
    sweep.add_argument("--csv", help="write the record table as CSV")
    sweep.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit records as JSON to PATH (or stdout with no PATH)",
    )
    sweep.add_argument("--save-plan", help="also write the plan as a JSON file")

    apps = sub.add_parser("apps", help="per-application savings (Figure 9)")
    apps.add_argument(
        "--carrier", default="att_hspa", choices=sorted(CARRIER_PROFILES)
    )
    apps.add_argument("--duration", type=float, default=1800.0)
    apps.add_argument("--seed", type=int, default=0)
    apps.add_argument("--csv", help="also write the table as CSV")

    carriers_cmp = sub.add_parser(
        "compare-carriers",
        help="cross-carrier comparison (Figures 17/18, Table 3)",
    )
    carriers_cmp.add_argument("--population", default="verizon_3g")
    carriers_cmp.add_argument("--hours", type=float, default=1.0)
    carriers_cmp.add_argument("--users", type=int, nargs="*", default=[1, 2])
    carriers_cmp.add_argument("--seed", type=int, default=0)
    carriers_cmp.add_argument("--csv", help="also write the table as CSV")

    validate = sub.add_parser(
        "validate", help="energy-estimator validation (Figure 8)"
    )
    validate.add_argument(
        "--carrier", default="verizon_lte", choices=sorted(CARRIER_PROFILES)
    )
    validate.add_argument("--seed", type=int, default=0)

    trace_info = sub.add_parser("trace-info", help="summarise a capture file")
    trace_info.add_argument("path")
    trace_info.add_argument(
        "--format", choices=("pcap", "tcpdump"), default="pcap"
    )

    return parser


# ----------------------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------------------

def _cmd_carriers() -> int:
    rows = [
        [
            profile.key,
            profile.name,
            profile.technology.name,
            f"{profile.power_send_mw:.0f}",
            f"{profile.power_recv_mw:.0f}",
            f"{profile.power_active_mw:.0f}",
            f"{profile.power_high_idle_mw:.0f}",
            f"{profile.t1:.1f}",
            f"{profile.t2:.1f}",
        ]
        for profile in (CARRIER_PROFILES[key] for key in CARRIER_ORDER)
    ]
    print(
        format_table(
            ["key", "name", "tech", "Psnd", "Prcv", "Pt1", "Pt2", "t1", "t2"], rows
        )
    )
    return 0


def _load_simulate_trace(args: argparse.Namespace):
    if args.pcap:
        return read_pcap(args.pcap)
    if args.tcpdump:
        return read_tcpdump(args.tcpdump).trace
    if args.user is not None:
        return user_trace(
            args.population,
            args.user,
            hours_per_day=args.duration / 3600.0,
            seed=args.seed,
        )
    app = args.app or "email"
    return generate_application_trace(app, duration=args.duration, seed=args.seed)


def _cmd_simulate(args: argparse.Namespace) -> int:
    profile = get_profile(args.carrier)
    trace = _load_simulate_trace(args)
    results = run_schemes(trace, profile, window_size=args.window_size)
    baseline = results.pop("status_quo")
    table = savings_table(results, baseline)
    rows = []
    records = []
    for scheme in KNOWN_SCHEMES:
        if scheme not in table:
            continue
        report = table[scheme]
        result = results[scheme]
        rows.append(
            [
                scheme,
                f"{report.saved_percent:.1f}",
                f"{result.total_energy_j:.1f}",
                f"{result.switches_normalized(baseline):.2f}",
                f"{result.mean_delay:.2f}",
            ]
        )
        records.append(
            {
                "scheme": scheme,
                "saved_percent": report.saved_percent,
                "energy_j": result.total_energy_j,
                "switches_normalized": result.switches_normalized(baseline),
                "mean_delay_s": result.mean_delay,
            }
        )
    print(f"carrier: {profile.name}    trace: {trace.name} ({len(trace)} packets)")
    print(f"status quo energy: {baseline.total_energy_j:.1f} J, "
          f"{baseline.switch_count} switches")
    print(
        format_table(
            ["scheme", "saved %", "energy (J)", "switches/SQ", "mean delay (s)"], rows
        )
    )
    if args.csv:
        write_csv(records, args.csv)
        print(f"wrote {args.csv}")
    return 0


#: Friendly scheme-name aliases accepted by ``sweep --schemes``.
_SCHEME_ALIASES = {
    "learning": "makeidle+makeactive_learn",
    "makeactive": "makeidle+makeactive_learn",
    "makeactive_learn": "makeidle+makeactive_learn",
    "makeactive_fixed": "makeidle+makeactive_fixed",
    "fixed": "fixed_4.5s",
    "hist": "makeidle_hist",
    "rate": "makeidle_rate",
}


def _split_csv_arg(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _build_sweep_plan(args: argparse.Namespace):
    """Translate the ``sweep`` arguments into an ExperimentPlan."""
    from .api import cell as cell_spec, plan as new_plan
    from .config import load_plan

    if args.plan:
        loaded = load_plan(args.plan)
        if args.engine is not None:
            # Applies on top of the file's axes; single-UE plans reject
            # the axis at build() with the usual clean error.
            loaded = loaded.engines(args.engine)
        return loaded
    p = new_plan()
    if args.metro is not None:
        if args.cell or args.scenario is not None or args.dormancy is not None:
            raise ValueError(
                "--metro is its own sweep kind: drop --cell/--scenario, and "
                "configure station policies per cell in the metro topology "
                "instead of --dormancy"
            )
        if args.apps or args.population:
            raise ValueError(
                "--metro topologies define their own workload mixes; drop "
                "--apps/--population"
            )
        names = _split_csv_arg(args.metro)
        if not names:
            raise ValueError("--metro requires at least one preset name")
        devices = args.devices if args.devices is not None else 1000
        # plan.metros resolves preset names itself (and raises the
        # preset-listing error for unknown ones).
        p = p.metros(*names, devices=devices, duration=args.duration)
        if args.shards is not None:
            p = p.shards(args.shards)
    elif not args.cell and (args.devices is not None
                            or args.dormancy is not None
                            or args.shards is not None
                            or args.scenario is not None
                            or args.engine is not None):
        raise ValueError(
            "--devices, --dormancy, --shards, --scenario and --engine "
            "configure a cell or metro sweep; add --cell or --metro (they "
            "would otherwise be silently ignored)"
        )
    if args.metro is not None:
        pass  # workload declared above; fall through to the shared axes
    elif args.cell:
        if args.population:
            raise ValueError(
                "--cell sweeps synthetic application mixes (--apps); "
                "--population applies to single-UE sweeps only"
            )
        devices = args.devices if args.devices is not None else 100
        if args.scenario is not None:
            if args.apps:
                raise ValueError(
                    "--scenario defines its own application mixes per "
                    "cohort; drop --apps (or drop --scenario)"
                )
            names = _split_csv_arg(args.scenario)
            if not names:
                raise ValueError("--scenario requires at least one preset name")
            # plan.scenarios resolves preset names itself (and raises the
            # preset-listing error for unknown ones).
            p = p.scenarios(*names, devices=devices, duration=args.duration)
        else:
            apps = (_split_csv_arg(args.apps) if args.apps
                    else ["im", "email", "news"])
            p = p.cells(
                cell_spec(devices=devices, apps=tuple(apps),
                          duration=args.duration)
            )
        p = p.dormancy(*_split_csv_arg(args.dormancy or "accept_all"))
        if args.shards is not None:
            p = p.shards(args.shards)
    elif args.population:
        p = p.users(args.population, args.users or None,
                    hours_per_day=args.duration / 3600.0)
    else:
        apps = _split_csv_arg(args.apps) if args.apps else ["email", "im"]
        p = p.apps(*apps, duration=args.duration)
    if args.engine is not None and (args.cell or args.metro is not None):
        p = p.engines(args.engine)
    p = p.carriers(*_split_csv_arg(args.carriers))
    if args.schemes is None:
        # Streamed cell/metro traces cannot feed the offline oracle (see
        # RadioPolicy.requires_trace), so those defaults leave it out.
        default_schemes = (
            "status_quo,makeidle" if args.cell or args.metro is not None
            else "status_quo,makeidle,oracle"
        )
    else:
        default_schemes = args.schemes
    schemes = [_SCHEME_ALIASES.get(s, s) for s in _split_csv_arg(default_schemes)]
    if "status_quo" not in schemes:
        schemes.insert(0, "status_quo")  # the normalisation baseline is implied
    p = p.policies(*schemes).window_size(args.window_size)
    if args.seeds:
        p = p.repeat(seeds=args.seeds)
    return p


def _sweep_cache(args: argparse.Namespace):
    """The sweep's :class:`ResultCache`, with the disk tier when enabled.

    ``--cache-dir DIR`` enables it explicitly; ``$REPRO_RRC_CACHE_DIR``
    enables it implicitly (so CI and cron jobs opt whole pipelines in
    without touching every invocation); ``--no-disk-cache`` wins over both.
    """
    import os as _os

    from .api.cache import CACHE_DIR_ENV, DiskCacheTier, ResultCache

    if args.no_disk_cache:
        return ResultCache()
    directory = args.cache_dir or _os.environ.get(CACHE_DIR_ENV)
    if directory is None:
        return ResultCache()
    return ResultCache(disk=DiskCacheTier(directory))


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .api import ProcessPoolRunner, SerialRunner
    from .config import save_plan

    try:
        sweep_plan = _build_sweep_plan(args)
        if args.save_plan:
            save_plan(sweep_plan, args.save_plan)
            print(f"wrote plan to {args.save_plan}", file=sys.stderr)
        # Sharded cells need the pool even at --jobs 1: cross-process
        # sharding is the point of --shards, so default to one worker per
        # shard unless --jobs asks for more.
        max_shards = max(sweep_plan.shard_counts, default=1)
        jobs = args.jobs if args.jobs > 1 else max_shards
        cache = _sweep_cache(args)
        runner = (ProcessPoolRunner(jobs=jobs, cache=cache) if jobs > 1
                  else SerialRunner(cache=cache))
        print(sweep_plan.describe(), file=sys.stderr)
        runs = runner.run(sweep_plan)
    except (KeyError, ValueError, OSError) as exc:
        # Bad workloads/carriers/schemes, an unreadable --plan file, or a
        # plan with an empty axis: report cleanly instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records = runs.to_records()

    if args.json is not None:
        text = runs.to_json(None if args.json == "-" else args.json)
        if args.json == "-":
            print(text)
        else:
            print(f"wrote {args.json}", file=sys.stderr)
    elif records and "n_cells" in records[0]:
        rows = [
            [
                r["trace"],
                r["carrier"],
                r["scheme"],
                str(r.get("shards", 1)),
                str(r["devices"]),
                str(r["handovers"]),
                f"{r['energy_j']:.1f}",
                f"{r.get('saved_percent', 0.0):.1f}",
                f"{100.0 * r['denial_rate']:.1f}",
            ]
            for r in records
        ]
        print(
            format_table(
                ["metro", "carrier", "scheme", "shards", "devices",
                 "handovers", "energy (J)", "saved %", "denied %"],
                rows,
            )
        )
        cell_rows = [
            [
                r["trace"],
                r["carrier"],
                r["scheme"],
                name,
                c["dormancy"],
                str(c["visits"]),
                str(c["departures"]),
                f"{c['energy_j']:.1f}",
                # "-" = no baseline to normalise against, distinct from a
                # computed 0.0% saving.
                (f"{c['saved_percent']:.1f}" if "saved_percent" in c
                 else "-"),
                f"{100.0 * c['denial_rate']:.1f}",
                (f"{100.0 * c['utilization']:.1f}" if "utilization" in c
                 else "-"),
            ]
            for r in records
            for name, c in r.get("cells", {}).items()
        ]
        if cell_rows:
            print()
            print(
                format_table(
                    ["metro", "carrier", "scheme", "cell", "dormancy",
                     "visits", "handovers out", "energy (J)", "saved %",
                     "denied %", "util %"],
                    cell_rows,
                )
            )
    elif records and "dormancy" in records[0]:
        rows = [
            [
                r["trace"],
                r["carrier"],
                r["scheme"],
                r["dormancy"],
                str(r.get("shards", 1)),
                f"{r['energy_j']:.1f}",
                f"{r.get('saved_percent', 0.0):.1f}",
                f"{100.0 * r['denial_rate']:.1f}",
                str(r["peak_switches_per_minute"]),
                str(r["peak_active_devices"]),
            ]
            for r in records
        ]
        print(
            format_table(
                ["cell", "carrier", "scheme", "dormancy", "shards",
                 "energy (J)", "saved %", "denied %", "peak sw/min",
                 "peak active"],
                rows,
            )
        )
        cohort_rows = [
            [
                r["trace"],
                r["carrier"],
                r["scheme"],
                r["dormancy"],
                str(r.get("shards", 1)),
                str(r["seed"]),
                name,
                str(c["devices"]),
                f"{c['energy_j']:.1f}",
                # "-" = no baseline to normalise against, distinct from a
                # computed 0.0% saving.
                (f"{c['saved_percent']:.1f}" if "saved_percent" in c
                 else "-"),
                f"{100.0 * c['denial_rate']:.1f}",
                str(c["switches"]),
            ]
            for r in records
            for name, c in r.get("cohorts", {}).items()
        ]
        if cohort_rows:
            print()
            print(
                format_table(
                    ["cell", "carrier", "scheme", "dormancy", "shards",
                     "seed", "cohort", "devices", "energy (J)", "saved %",
                     "denied %", "switches"],
                    cohort_rows,
                )
            )
    else:
        rows = [
            [
                r["trace"],
                r["carrier"],
                r["scheme"],
                str(r["seed"]),
                f"{r['energy_j']:.1f}",
                f"{r.get('saved_percent', 0.0):.1f}",
                f"{r.get('switches_normalized', 1.0):.2f}",
                f"{r['mean_delay_s']:.2f}",
            ]
            for r in records
        ]
        print(
            format_table(
                ["trace", "carrier", "scheme", "seed", "energy (J)",
                 "saved %", "switches/SQ", "mean delay (s)"],
                rows,
            )
        )
    stats = runs.cache_stats
    if stats is not None:
        disk = (f"  disk hits: {stats.disk_hits}"
                if getattr(stats, "disk_hits", 0) else "")
        print(
            f"runs: {len(runs)}  simulated: {stats.misses}  "
            f"cache hits: {stats.hits}{disk}",
            file=sys.stderr,
        )
    if args.csv:
        runs.to_csv(args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    profile = get_profile(args.carrier)
    table = application_savings(
        profile, duration=args.duration, seed=args.seed
    )
    schemes = sorted({scheme for per_app in table.values() for scheme in per_app})
    rows = []
    records = []
    for app, per_app in table.items():
        row = [app] + [
            f"{per_app[s].saved_percent:.1f}" if s in per_app else "-" for s in schemes
        ]
        rows.append(row)
        record = {"app": app}
        record.update(
            {s: per_app[s].saved_percent for s in schemes if s in per_app}
        )
        records.append(record)
    print(format_table(["app"] + schemes, rows))
    if args.csv:
        write_csv(records, args.csv, fieldnames=["app"] + schemes)
        print(f"wrote {args.csv}")
    return 0


def _cmd_compare_carriers(args: argparse.Namespace) -> int:
    comparison = carrier_comparison(
        population=args.population,
        hours_per_day=args.hours,
        seed=args.seed,
        users=args.users or None,
    )
    rows = []
    records = []
    for carrier_key, row in comparison.items():
        makeidle = row.saved_percent.get("makeidle", 0.0)
        combined = row.saved_percent.get("makeidle+makeactive_learn", 0.0)
        switches = row.switches_normalized.get("makeidle", 0.0)
        combined_switches = row.switches_normalized.get(
            "makeidle+makeactive_learn", 0.0
        )
        delay = row.median_delay_s.get("makeidle+makeactive_learn", 0.0)
        rows.append(
            [
                carrier_key,
                f"{makeidle:.1f}",
                f"{combined:.1f}",
                f"{switches:.2f}",
                f"{combined_switches:.2f}",
                f"{delay:.2f}",
            ]
        )
        records.append(
            {
                "carrier": carrier_key,
                "makeidle_saved_percent": makeidle,
                "combined_saved_percent": combined,
                "makeidle_switches_normalized": switches,
                "combined_switches_normalized": combined_switches,
                "combined_median_delay_s": delay,
            }
        )
    print(
        format_table(
            [
                "carrier",
                "MakeIdle %",
                "MI+MA %",
                "MI switches/SQ",
                "MI+MA switches/SQ",
                "MA median delay (s)",
            ],
            rows,
        )
    )
    if args.csv:
        write_csv(records, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    profile = get_profile(args.carrier)
    outcome = run_validation(profile, seed=args.seed)
    print(f"carrier: {profile.name}")
    print(f"mean signed error:   {outcome.mean_error * 100:+.2f}%")
    print(f"mean absolute error: {outcome.mean_absolute_error * 100:.2f}%")
    print(f"max absolute error:  {outcome.max_absolute_error * 100:.2f}%")
    within = "yes" if outcome.max_absolute_error <= 0.10 else "no"
    print(f"within the paper's 10% bound: {within}")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    if args.format == "pcap":
        trace = read_pcap(args.path)
    else:
        trace = read_tcpdump(args.path).trace
    summary = summarize_trace(trace)
    print(f"trace: {trace.name}")
    print(f"packets:        {summary.packet_count}")
    print(f"duration:       {summary.duration:.1f} s")
    print(f"total bytes:    {summary.total_bytes}")
    print(f"mean throughput:{summary.mean_throughput_bps / 1000.0:10.1f} kbit/s")
    print(f"median IAT:     {summary.median_inter_arrival:.3f} s")
    print(f"95th pct IAT:   {summary.p95_inter_arrival:.3f} s")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-rrc`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "carriers":
        return _cmd_carriers()
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "apps":
        return _cmd_apps(args)
    if args.command == "compare-carriers":
        return _cmd_compare_carriers(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "trace-info":
        return _cmd_trace_info(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
