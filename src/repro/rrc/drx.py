"""LTE connected-mode DRX (discontinuous reception) extension.

The paper's LTE model (Figure 2(b)) collapses RRC_CONNECTED into a single
Active state and notes that the standard's connected-mode *substates* —
continuous reception, Short DRX and Long DRX (Huang et al., MobiSys 2012,
the paper's reference [8]) — "are not relevant" to its analysis because the
tail power it measured already averages over them.  This module implements
those substates explicitly so that:

* the simplification can be quantified (:func:`effective_tail_power`
  computes the duty-cycled average power the single-state model should use);
* ablation studies can run the library's policies against an LTE profile
  whose tail power is derived from a DRX configuration instead of a single
  measured constant (:func:`profile_with_drx`).

The DRX model is intentionally the standard textbook one: after the last
data activity the UE listens continuously for ``inactivity_timer`` seconds,
then cycles through Short DRX (waking for ``on_duration`` every
``short_cycle`` seconds) for ``short_cycle_timer`` seconds, then Long DRX
(same on-duration every ``long_cycle`` seconds) until the RRC inactivity
timer releases the connection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .profiles import CarrierProfile
from .states import Technology

__all__ = [
    "DrxConfig",
    "DrxCarrierProfile",
    "DrxPhase",
    "DEFAULT_LTE_DRX",
    "drx_timeline",
    "effective_tail_power",
    "profile_with_drx",
]


@dataclass(frozen=True)
class DrxConfig:
    """Connected-mode DRX parameters (all times in seconds).

    Attributes
    ----------
    inactivity_timer:
        Continuous-reception time after the last data activity before Short
        DRX starts.
    on_duration:
        Time the receiver is awake at the start of each DRX cycle.
    short_cycle:
        Length of one Short DRX cycle.
    short_cycle_timer:
        How long the UE stays in Short DRX before moving to Long DRX.
    long_cycle:
        Length of one Long DRX cycle.
    sleep_power_fraction:
        Receiver power while "asleep" inside a DRX cycle, as a fraction of
        the awake (continuous-reception) power.  Non-zero because the RF
        chain is only partly gated.
    """

    inactivity_timer: float = 0.1
    on_duration: float = 0.01
    short_cycle: float = 0.02
    short_cycle_timer: float = 0.4
    long_cycle: float = 0.32
    sleep_power_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.inactivity_timer < 0:
            raise ValueError("inactivity_timer must be non-negative")
        if self.on_duration <= 0:
            raise ValueError("on_duration must be positive")
        if self.short_cycle < self.on_duration:
            raise ValueError("short_cycle must be at least on_duration")
        if self.long_cycle < self.on_duration:
            raise ValueError("long_cycle must be at least on_duration")
        if self.short_cycle_timer < 0:
            raise ValueError("short_cycle_timer must be non-negative")
        if not 0.0 <= self.sleep_power_fraction <= 1.0:
            raise ValueError("sleep_power_fraction must be in [0, 1]")

    @property
    def short_duty_cycle(self) -> float:
        """Fraction of a Short DRX cycle the receiver is awake."""
        return min(1.0, self.on_duration / self.short_cycle)

    @property
    def long_duty_cycle(self) -> float:
        """Fraction of a Long DRX cycle the receiver is awake."""
        return min(1.0, self.on_duration / self.long_cycle)

    def awake_fraction_at(self, elapsed: float) -> float:
        """Average awake fraction of the phase active ``elapsed`` seconds after data.

        Returns 1.0 during continuous reception, the short duty cycle during
        Short DRX, and the long duty cycle afterwards.
        """
        if elapsed < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed}")
        if elapsed < self.inactivity_timer:
            return 1.0
        if elapsed < self.inactivity_timer + self.short_cycle_timer:
            return self.short_duty_cycle
        return self.long_duty_cycle


#: A typical LTE DRX configuration (values in line with deployed networks
#: and with the measurements in Huang et al. [8]).
DEFAULT_LTE_DRX = DrxConfig()


@dataclass(frozen=True)
class DrxPhase:
    """One phase of the post-activity DRX schedule."""

    name: str
    start: float
    end: float
    awake_fraction: float

    @property
    def duration(self) -> float:
        """Length of the phase in seconds."""
        return self.end - self.start


def drx_timeline(config: DrxConfig, tail_length: float) -> list[DrxPhase]:
    """Phases the UE passes through in a tail of ``tail_length`` seconds.

    The tail starts at the last data activity and ends when the RRC
    inactivity timer releases the connection (the carrier's ``t1``).
    """
    if tail_length < 0:
        raise ValueError(f"tail_length must be non-negative, got {tail_length}")
    phases: list[DrxPhase] = []
    boundaries = (
        ("continuous", 0.0, config.inactivity_timer, 1.0),
        (
            "short_drx",
            config.inactivity_timer,
            config.inactivity_timer + config.short_cycle_timer,
            config.short_duty_cycle,
        ),
        (
            "long_drx",
            config.inactivity_timer + config.short_cycle_timer,
            float("inf"),
            config.long_duty_cycle,
        ),
    )
    for name, start, end, fraction in boundaries:
        if start >= tail_length:
            break
        phases.append(
            DrxPhase(
                name=name,
                start=start,
                end=min(end, tail_length),
                awake_fraction=fraction,
            )
        )
    return phases


def effective_tail_power(
    config: DrxConfig,
    awake_power_w: float,
    tail_length: float,
) -> float:
    """Average connected-mode tail power over a tail of ``tail_length`` seconds.

    The awake power is drawn for the awake fraction of each phase and
    ``sleep_power_fraction`` of it for the remainder; averaging over the
    whole tail yields the single "P_t1" constant the paper's model uses.
    """
    if awake_power_w < 0:
        raise ValueError("awake_power_w must be non-negative")
    if tail_length <= 0:
        raise ValueError(f"tail_length must be positive, got {tail_length}")
    sleep_power = awake_power_w * config.sleep_power_fraction
    energy = 0.0
    for phase in drx_timeline(config, tail_length):
        average = (
            phase.awake_fraction * awake_power_w
            + (1.0 - phase.awake_fraction) * sleep_power
        )
        energy += average * phase.duration
    return energy / tail_length


@dataclass(frozen=True)
class DrxCarrierProfile(CarrierProfile):
    """A carrier profile whose ``P_t1`` is *derived* from a DRX schedule.

    The derived tail power is the ``effective_tail_power`` average over the
    profile's own ``t1``, so it is only valid for that ``t1``.  This
    subclass remembers the derivation inputs and recomputes the average
    whenever the timers change — a plain :func:`dataclasses.replace` (as
    the base :meth:`~repro.rrc.profiles.CarrierProfile.with_timers` does)
    would silently keep the stale DRX-derived constant through a
    ``.with_timers(t1=...)`` ablation.
    """

    #: DRX schedule the tail power was averaged over (``None`` only while
    #: dataclass machinery constructs intermediate copies).
    drx_config: DrxConfig | None = None
    #: Receiver power while awake inside the tail, watts.
    drx_awake_power_w: float = 0.0

    def with_timers(self, t1: float, t2: float | None = None) -> "CarrierProfile":
        """Return a copy with new timers *and* a freshly derived tail power.

        With ``t1 == 0`` the Active tail has zero length, so there is no
        schedule to average over; the tail power falls back to the awake
        (continuous-reception) power, which no interval ever integrates.
        """
        base = super().with_timers(t1, t2)
        if self.drx_config is None:
            return base
        if base.t1 > 0:
            average_w = effective_tail_power(
                self.drx_config, self.drx_awake_power_w, base.t1
            )
        else:
            average_w = self.drx_awake_power_w
        return replace(base, power_active_mw=average_w * 1000.0)


def profile_with_drx(
    profile: CarrierProfile,
    config: DrxConfig = DEFAULT_LTE_DRX,
    awake_power_w: float | None = None,
) -> DrxCarrierProfile:
    """Return an LTE profile whose tail power is derived from a DRX schedule.

    ``awake_power_w`` defaults to the profile's receive power (the radio is
    listening during the on-durations); the derived average replaces the
    profile's measured ``P_t1``.  Only meaningful for LTE profiles — 3G
    profiles are returned unchanged apart from a :class:`ValueError` guard.

    The result is a :class:`DrxCarrierProfile`: later ``.with_timers(...)``
    ablations re-derive the tail power for the new ``t1`` instead of
    keeping the stale average.
    """
    if profile.technology is not Technology.LTE:
        raise ValueError(
            f"DRX applies to LTE profiles only, got {profile.technology!r}"
        )
    awake = awake_power_w if awake_power_w is not None else profile.power_recv_w
    average_w = effective_tail_power(config, awake, profile.t1)
    fields = {
        name: getattr(profile, name)
        for name in CarrierProfile.__dataclass_fields__
    }
    fields["power_active_mw"] = average_w * 1000.0
    return DrxCarrierProfile(
        drx_config=config, drx_awake_power_w=awake, **fields
    )
