"""Precomputed RRC transition/energy tables for the kernel hot path.

Every per-event decision the simulation kernel makes — "has the
inactivity timer expired?", "what does this promotion cost?", "what power
does a transfer draw?" — is a pure function of the
:class:`~repro.rrc.profiles.CarrierProfile` (and, one level up, of the
``(profile, policy)`` pair the engine binds per run).  Before the hot-path
overhaul those values were re-derived on every event through property
chains (``profile.power_send_mw / 1000.0`` per packet, ``profile.t1 +
profile.t2`` per timer check).  A :class:`TransitionTable` snapshots them
once per profile into plain float attributes the state machine and the
energy fold read directly.

Byte-identity contract
----------------------

Each table field is computed by *the same float expression* the
corresponding profile property uses (see the field comments), so a value
read from the table is the identical IEEE-754 double the per-event
derivation produced — precomputation changes where the arithmetic
happens, never its result.  The golden-record suites
(``tests/golden/*.json``, byte-exact) and the equivalence property tests
hold this to account.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .profiles import CarrierProfile

__all__ = ["TransitionTable", "transition_table"]


@dataclass(frozen=True, slots=True)
class TransitionTable:
    """Flat per-profile constants for the per-event hot path."""

    #: Inactivity timers (``profile.t1`` / ``profile.t2``), seconds.
    t1: float
    t2: float
    #: ``t1 + t2`` — :attr:`CarrierProfile.total_inactivity_timeout`.
    total_timeout: float
    #: :attr:`CarrierProfile.has_high_idle_state`.
    has_high_idle: bool
    #: Idle time after which an untouched radio reaches Idle: the
    #: inactivity-timer-expiry horizon the kernel schedules in cell mode
    #: (``total_timeout`` with a FACH-like state, else ``t1``).
    idle_after: float
    #: Promotion cost (``promotion_energy_j`` / ``promotion_delay_s``).
    promotion_energy_j: float
    promotion_delay_s: float
    #: Fast-dormancy cost (``demotion_energy_j`` = ``radio_off_energy_j *
    #: dormancy_fraction``, same product the profile property computes).
    demotion_energy_j: float
    demotion_delay_s: float
    #: State tail powers in watts (``power_*_mw / 1000.0``, the identical
    #: division the ``power_*_w`` properties perform).
    power_active_w: float
    power_high_idle_w: float
    power_idle_w: float
    #: Transfer powers in watts (``transfer_power_w(uplink)`` precomputed
    #: for both directions).
    power_send_w: float
    power_recv_w: float


@lru_cache(maxsize=512)
def transition_table(profile: CarrierProfile) -> TransitionTable:
    """The precomputed hot-path table of ``profile`` (cached per profile).

    Profiles are frozen dataclasses, so derived profiles
    (``with_timers``, ``with_dormancy_fraction``) get their own entries;
    the cache is bounded so parameter sweeps over many derived profiles
    cannot grow it without limit.
    """
    return TransitionTable(
        t1=profile.t1,
        t2=profile.t2,
        total_timeout=profile.total_inactivity_timeout,
        has_high_idle=profile.has_high_idle_state,
        idle_after=(
            profile.total_inactivity_timeout
            if profile.has_high_idle_state
            else profile.t1
        ),
        promotion_energy_j=profile.promotion_energy_j,
        promotion_delay_s=profile.promotion_delay_s,
        demotion_energy_j=profile.demotion_energy_j,
        demotion_delay_s=profile.demotion_delay_s,
        power_active_w=profile.power_active_w,
        power_high_idle_w=profile.power_high_idle_w,
        power_idle_w=profile.power_idle_w,
        power_send_w=profile.transfer_power_w(True),
        power_recv_w=profile.transfer_power_w(False),
    )
