"""Discrete-event RRC state machine driven by packet activity.

The machine reproduces the behaviour in Figure 2 of the paper:

* data activity keeps (or puts) the radio in the **Active** state
  (CELL_DCH / RRC_CONNECTED);
* after ``t1`` seconds without activity the network demotes the radio to the
  **High-power idle** state (CELL_FACH) — carriers without such a state
  (Verizon 3G, LTE) skip straight to Idle;
* after a further ``t2`` seconds of inactivity the radio is demoted to
  **Idle** (CELL_PCH / IDLE / RRC_IDLE);
* a device supporting fast dormancy may request the demotion to Idle early;
* any activity while Idle triggers a **promotion** back to Active, which
  costs time, energy, and signalling.

The machine maintains a timeline of :class:`StateInterval` records (which
state the radio occupied over which span of trace time) and a list of
:class:`SwitchEvent` records (each promotion or demotion with its energy
cost).  The energy accounting in :mod:`repro.energy` integrates state power
over the timeline and adds the switch energies, exactly as the paper's
simplified power model (Figure 5) does.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from .profiles import CarrierProfile
from .states import RadioState
from .tables import transition_table

__all__ = [
    "StateInterval",
    "SwitchEvent",
    "SwitchKind",
    "RrcStateMachine",
]


class SwitchKind(Enum):
    """Why a state switch happened."""

    PROMOTION = "promotion"          # Idle -> Active, triggered by traffic
    TIMER_DEMOTION = "timer_demotion"  # Active/High-idle -> next state, by timer
    FAST_DORMANCY = "fast_dormancy"    # Active/High-idle -> Idle, by device request


@dataclass(frozen=True)
class StateInterval:
    """The radio occupied ``state`` from ``start`` to ``end`` (trace time)."""

    start: float
    end: float
    state: RadioState

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end ({self.end}) must be >= start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class SwitchEvent:
    """One radio state switch and its fixed cost."""

    time: float
    kind: SwitchKind
    from_state: RadioState
    to_state: RadioState
    energy_j: float
    delay_s: float

    @property
    def is_promotion(self) -> bool:
        """True when this switch brought the radio from Idle to Active."""
        return self.kind is SwitchKind.PROMOTION

    @property
    def is_demotion(self) -> bool:
        """True when this switch lowered the radio's power state."""
        return not self.is_promotion


class RrcStateMachine:
    """Simulates the RRC machine of one carrier for one device.

    The machine is advanced by two kinds of calls:

    * :meth:`notify_activity` — a packet was sent or received at a given
      time; the machine first applies any timer-based demotions that would
      have happened since the previous event, then promotes the radio if it
      was Idle.
    * :meth:`request_fast_dormancy` — the control module asks the base
      station to release the channel now (the paper's simplified model
      assumes the request is always granted).

    Finally :meth:`finish` closes the timeline at the end of the trace.
    Times must be non-decreasing across calls.

    Timer thresholds and switch costs are read from the profile's
    precomputed :class:`~repro.rrc.tables.TransitionTable` (bound to plain
    attributes at construction), so no per-event call re-derives a
    constant — the table values are float-identical to the profile
    properties they replace.

    History modes
    -------------

    By default the machine records a full :class:`StateInterval` /
    :class:`SwitchEvent` history (what single-UE results are built from).
    With ``fold_history=True`` it instead *folds* each completed interval
    and switch into flat per-state totals at the moment the transition
    happens — the same ``end - start`` durations and ``energy_j`` values,
    added in the same order, so the folded totals are bit-equal to
    summing the recorded history afterwards (which is exactly what the
    streaming cell kernel used to do via :meth:`drain_history`), while
    allocating no history objects at all.  Read the totals back with
    :meth:`folded_state_totals`.
    """

    def __init__(self, profile: CarrierProfile, start_time: float = 0.0,
                 initial_state: RadioState = RadioState.IDLE,
                 fold_history: bool = False) -> None:
        self._profile = profile
        table = transition_table(profile)
        self._t1 = table.t1
        self._t2 = table.t2
        self._total_timeout = table.total_timeout
        self._has_high_idle = table.has_high_idle
        self._promotion_energy_j = table.promotion_energy_j
        self._promotion_delay_s = table.promotion_delay_s
        self._demotion_energy_j = table.demotion_energy_j
        self._demotion_delay_s = table.demotion_delay_s
        self._state = initial_state
        self._segment_start = start_time
        self._last_activity = start_time
        self._now = start_time
        self._intervals: list[StateInterval] = []
        self._switches: list[SwitchEvent] = []
        self._finished = False
        self._fold = fold_history
        # Folded totals (fold_history mode): per-state completed-interval
        # durations, switch energy, and switch counts by kind.
        self._fold_active_s = 0.0
        self._fold_high_idle_s = 0.0
        self._fold_idle_s = 0.0
        self._fold_switch_j = 0.0
        self._fold_promotions = 0
        self._fold_timer_demotions = 0
        self._fold_fast_demotions = 0

    # -- public read-only views -----------------------------------------------------

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile driving timers and costs."""
        return self._profile

    @property
    def state(self) -> RadioState:
        """Current radio state (as of the last processed event)."""
        return self._state

    @property
    def now(self) -> float:
        """Time of the most recently processed event."""
        return self._now

    @property
    def intervals(self) -> Sequence[StateInterval]:
        """Timeline of completed state intervals."""
        return tuple(self._intervals)

    @property
    def switches(self) -> Sequence[SwitchEvent]:
        """All state switches recorded so far."""
        return tuple(self._switches)

    @property
    def promotion_count(self) -> int:
        """Number of Idle→Active promotions so far."""
        if self._fold:
            return self._fold_promotions
        return sum(1 for s in self._switches if s.is_promotion)

    @property
    def demotion_count(self) -> int:
        """Number of demotions (timer or fast dormancy) so far."""
        if self._fold:
            return self._fold_timer_demotions + self._fold_fast_demotions
        return sum(1 for s in self._switches if s.is_demotion)

    @property
    def timer_demotion_count(self) -> int:
        """Number of inactivity-timer demotions so far (either history mode)."""
        if self._fold:
            return self._fold_timer_demotions
        return sum(
            1 for s in self._switches if s.kind is SwitchKind.TIMER_DEMOTION
        )

    @property
    def fast_demotion_count(self) -> int:
        """Number of fast-dormancy demotions so far (either history mode)."""
        if self._fold:
            return self._fold_fast_demotions
        return sum(
            1 for s in self._switches if s.kind is SwitchKind.FAST_DORMANCY
        )

    @property
    def switch_count(self) -> int:
        """Total number of state switches so far."""
        if self._fold:
            return (self._fold_promotions + self._fold_timer_demotions
                    + self._fold_fast_demotions)
        return len(self._switches)

    @property
    def idle_since_last_activity(self) -> float:
        """Seconds elapsed since the last data activity."""
        return self._now - self._last_activity

    @property
    def finished(self) -> bool:
        """Whether the timeline is closed (or the machine was sealed)."""
        return self._finished

    def seal(self) -> None:
        """Refuse all further events without closing the timeline.

        Unlike :meth:`finish` this records and folds nothing — the
        machine is frozen exactly as it stands.  The kernel seals every
        machine of an aborted run so a partially-advanced timeline can
        neither be extended nor finished into something that looks
        complete.
        """
        self._finished = True

    @property
    def segment_start(self) -> float:
        """Start time of the current (still open) state segment.

        :meth:`finish` closes the timeline with the interval
        ``[segment_start, end_time]``; shard merging reads this to fold the
        same final interval at a globally resolved end time instead.
        """
        return self._segment_start

    @property
    def last_activity(self) -> float:
        """Time of the last timer-resetting data activity.

        Together with :attr:`segment_start` and :attr:`state` this pins
        down every pending timer demotion (:meth:`finish` applies them),
        letting shard merging replay the close at a globally resolved end
        time with the exact float arithmetic of ``_apply_timers``.
        """
        return self._last_activity

    # -- state transitions ------------------------------------------------------------

    def state_at(self, time: float) -> RadioState:
        """Return the state the radio *would* be in at ``time`` with no new activity.

        Does not mutate the machine; useful for policies peeking ahead.
        """
        self._check_time(time)
        if self._state is RadioState.ACTIVE:
            idle_for = time - self._last_activity
            if self._has_high_idle:
                if idle_for >= self._total_timeout:
                    return RadioState.IDLE
                if idle_for >= self._t1:
                    return RadioState.HIGH_IDLE
                return RadioState.ACTIVE
            return RadioState.IDLE if idle_for >= self._t1 else RadioState.ACTIVE
        if self._state is RadioState.HIGH_IDLE:
            # Demote after the remaining t2 counted from entering FACH,
            # which the timeline records as segment_start.
            if time - self._segment_start >= self._t2:
                return RadioState.IDLE
            return RadioState.HIGH_IDLE
        return self._state

    def advance_to(self, time: float) -> None:
        """Apply all timer-based demotions up to ``time`` (no new activity)."""
        self._check_time(time)
        self._apply_timers(time)
        self._now = time

    def notify_activity(self, time: float, reset_timer: bool = True) -> bool:
        """Record data activity at ``time``.

        Applies pending timer demotions first, then promotes the radio if it
        was Idle (recording a promotion switch) and finally returns the radio
        to Active.  Returns ``True`` when the activity caused a promotion.

        Parameters
        ----------
        time:
            Trace time of the packet.
        reset_timer:
            Whether the activity resets the inactivity timer (always true
            for real packets; policies may inject synthetic "keep-alive"
            activity that should not).
        """
        # Fast path: an Active radio whose t1 timer has not expired sees
        # no demotion and no promotion — only the clock and the activity
        # mark move.  The guard implies the ordering check (time >= now)
        # and exactly the no-op case of _apply_timers, so behaviour is
        # identical to the general path below.
        if (
            self._state is RadioState.ACTIVE
            and not self._finished
            and self._now <= time < self._last_activity + self._t1
        ):
            self._now = time
            if reset_timer:
                self._last_activity = time
            return False
        self._check_time(time)
        self._apply_timers(time)
        promoted = False
        if self._state is RadioState.IDLE:
            self._record_switch(
                time,
                SwitchKind.PROMOTION,
                RadioState.IDLE,
                RadioState.ACTIVE,
                self._promotion_energy_j,
                self._promotion_delay_s,
            )
            self._transition(time, RadioState.ACTIVE)
            promoted = True
        elif self._state is RadioState.HIGH_IDLE:
            # Returning to the dedicated channel from FACH is cheap and the
            # paper does not count it as a signalling switch.
            self._transition(time, RadioState.ACTIVE)
        self._now = time
        if reset_timer:
            self._last_activity = time
        return promoted

    def fast_forward_activity(self, time: float) -> None:
        """Collapse a run of fast-path activity updates into one step.

        Precondition (caller-verified, not rechecked here): the machine is
        Active and unfinished, and every skipped activity instant — up to
        and including ``time`` — lay strictly inside the ``t1`` window of
        its predecessor, so each one would have taken the
        :meth:`notify_activity` fast path.  That path only overwrites
        ``now`` and ``last_activity`` (no folds, no switches, no float
        arithmetic), so applying the whole run at once is byte-identical
        to applying it packet by packet.  The vector backend
        (:mod:`repro.sim.vector_engine`) uses this to replay an
        intra-burst packet run in O(1).
        """
        self._now = time
        self._last_activity = time

    def request_fast_dormancy(self, time: float) -> bool:
        """Demote the radio to Idle at ``time`` via fast dormancy.

        Returns ``True`` if a demotion actually happened (the radio was not
        already Idle).  The demotion is charged the fast-dormancy energy from
        the profile.
        """
        self._check_time(time)
        self._apply_timers(time)
        self._now = time
        if self._state is RadioState.IDLE:
            return False
        self._record_switch(
            time,
            SwitchKind.FAST_DORMANCY,
            self._state,
            RadioState.IDLE,
            self._demotion_energy_j,
            self._demotion_delay_s,
        )
        self._transition(time, RadioState.IDLE)
        return True

    def drain_history(
        self,
    ) -> tuple[tuple[StateInterval, ...], tuple[SwitchEvent, ...]]:
        """Return and clear the completed intervals and switches recorded so far.

        Superseded on the kernel hot path by ``fold_history=True`` (the
        machine folds at transition time instead of materialising history
        to drain); kept for consumers that want periodic history batches.
        Do not mix with the :attr:`intervals` / :attr:`switches` accessors
        for final results: drained history is gone.
        """
        if self._fold:
            raise RuntimeError(
                "drain_history() is meaningless in fold_history mode: "
                "history is folded at transition time, read it back with "
                "folded_state_totals()"
            )
        intervals = tuple(self._intervals)
        switches = tuple(self._switches)
        self._intervals.clear()
        self._switches.clear()
        return intervals, switches

    def folded_state_totals(self) -> tuple[float, float, float, float,
                                           int, int, int]:
        """The folded history totals (``fold_history=True`` machines).

        Returns ``(active_time_s, high_idle_time_s, idle_time_s,
        switch_j, promotions, timer_demotions, fast_demotions)`` — the
        exact running sums that draining the recorded history and folding
        it interval by interval (the pre-overhaul streaming path) would
        have produced: same values, same addition order, bit-equal
        floats.
        """
        if not self._fold:
            raise RuntimeError(
                "folded_state_totals() requires fold_history=True; "
                "history-recording machines expose intervals/switches"
            )
        return (
            self._fold_active_s,
            self._fold_high_idle_s,
            self._fold_idle_s,
            self._fold_switch_j,
            self._fold_promotions,
            self._fold_timer_demotions,
            self._fold_fast_demotions,
        )

    def finish(self, end_time: float) -> None:
        """Close the timeline at ``end_time`` (applying any pending timers)."""
        self._check_time(end_time)
        self._apply_timers(end_time)
        if end_time > self._segment_start:
            if self._fold:
                self._fold_segment(end_time)
            else:
                self._intervals.append(
                    StateInterval(self._segment_start, end_time, self._state)
                )
            self._segment_start = end_time
        self._now = end_time
        self._finished = True

    # -- internals ---------------------------------------------------------------------

    def _check_time(self, time: float) -> None:
        if self._finished:
            raise RuntimeError("state machine already finished")
        if time < self._now:
            raise ValueError(
                f"events must be non-decreasing in time: {time} < {self._now}"
            )

    def _fold_segment(self, end: float) -> None:
        """Fold the completed interval ``[segment_start, end)`` into the totals.

        The duration expression (``end - start``) and the state buckets
        match :class:`StateInterval.duration` and the downstream
        per-state fold exactly, so folding here is bit-equal to recording
        the interval and summing it later.  The machine itself only ever
        occupies Active / High-idle / Idle (``PROMOTING`` is a
        power-model state, not a machine state).
        """
        duration = end - self._segment_start
        state = self._state
        if state is RadioState.ACTIVE or state is RadioState.PROMOTING:
            self._fold_active_s += duration
        elif state is RadioState.HIGH_IDLE:
            self._fold_high_idle_s += duration
        elif state is RadioState.IDLE:
            self._fold_idle_s += duration

    def _transition(self, time: float, new_state: RadioState) -> None:
        if time > self._segment_start:
            if self._fold:
                self._fold_segment(time)
            else:
                self._intervals.append(
                    StateInterval(self._segment_start, time, self._state)
                )
        self._state = new_state
        self._segment_start = time

    def _record_switch(
        self,
        time: float,
        kind: SwitchKind,
        from_state: RadioState,
        to_state: RadioState,
        energy: float,
        delay: float,
    ) -> None:
        if self._fold:
            self._fold_switch_j += energy
            if kind is SwitchKind.PROMOTION:
                self._fold_promotions += 1
            elif kind is SwitchKind.TIMER_DEMOTION:
                self._fold_timer_demotions += 1
            else:
                self._fold_fast_demotions += 1
            return
        self._switches.append(
            SwitchEvent(time, kind, from_state, to_state, energy, delay)
        )

    def _apply_timers(self, time: float) -> None:
        """Insert timer-based demotions that occur strictly before ``time``."""
        if self._state is RadioState.ACTIVE:
            demote_at = self._last_activity + self._t1
            if time >= demote_at:
                if self._has_high_idle:
                    self._record_switch(
                        demote_at, SwitchKind.TIMER_DEMOTION,
                        RadioState.ACTIVE, RadioState.HIGH_IDLE, 0.0, 0.0,
                    )
                    self._transition(demote_at, RadioState.HIGH_IDLE)
                    idle_at = demote_at + self._t2
                    if time >= idle_at:
                        self._record_switch(
                            idle_at, SwitchKind.TIMER_DEMOTION,
                            RadioState.HIGH_IDLE, RadioState.IDLE, 0.0, 0.0,
                        )
                        self._transition(idle_at, RadioState.IDLE)
                else:
                    self._record_switch(
                        demote_at, SwitchKind.TIMER_DEMOTION,
                        RadioState.ACTIVE, RadioState.IDLE, 0.0, 0.0,
                    )
                    self._transition(demote_at, RadioState.IDLE)
        elif self._state is RadioState.HIGH_IDLE:
            idle_at = self._segment_start + self._t2
            if time >= idle_at:
                self._record_switch(
                    idle_at, SwitchKind.TIMER_DEMOTION,
                    RadioState.HIGH_IDLE, RadioState.IDLE, 0.0, 0.0,
                )
                self._transition(idle_at, RadioState.IDLE)
