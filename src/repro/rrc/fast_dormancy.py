"""Fast dormancy modelling (3GPP Release 7/8).

Fast dormancy lets a device ask the network to release its radio channel
before the inactivity timers expire.  At the time of the paper it was not
deployed on US carriers, so the authors model its cost as a fraction
(default 50 %) of the measured cost of turning the data radio off, and show
that their conclusions are insensitive to the exact fraction (10 %, 20 %,
40 % were also checked — Section 6.1).

This module wraps that modelling choice:

* :class:`FastDormancyModel` computes the demotion delay/energy for a given
  carrier profile and cost fraction, and exposes the paper's
  always-accept Release-8 policy as an explicit, documented assumption.
* :func:`dormancy_fraction_sweep` produces profiles for the sensitivity
  fractions used by the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .profiles import CarrierProfile

__all__ = [
    "FastDormancyModel",
    "SENSITIVITY_FRACTIONS",
    "dormancy_fraction_sweep",
]

#: Cost fractions examined in the paper's sensitivity check (Section 6.1).
SENSITIVITY_FRACTIONS: tuple[float, ...] = (0.1, 0.2, 0.4, 0.5)


@dataclass(frozen=True)
class FastDormancyModel:
    """Cost and policy model for device-initiated channel release.

    Attributes
    ----------
    profile:
        The carrier profile supplying the measured radio-off cost.
    fraction:
        Fraction of the radio-off delay/energy attributed to a fast-dormancy
        demotion (the paper's default is 0.5).
    always_accepted:
        Whether the base station grants every request.  The paper's
        simplified Release-8 model assumes it does; modelling a rejecting
        base station is future work both there and here.
    """

    profile: CarrierProfile
    fraction: float = 0.5
    always_accepted: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    @property
    def demotion_delay_s(self) -> float:
        """Delay of one fast-dormancy demotion, seconds."""
        return self.profile.radio_off_delay_s * self.fraction

    @property
    def demotion_energy_j(self) -> float:
        """Energy of one fast-dormancy demotion, joules."""
        return self.profile.radio_off_energy_j * self.fraction

    @property
    def switch_energy_j(self) -> float:
        """Round-trip switch energy (demotion + promotion), joules."""
        return self.demotion_energy_j + self.profile.promotion_energy_j

    def request_granted(self) -> bool:
        """Whether a dormancy request issued now would be granted."""
        return self.always_accepted

    def apply_to_profile(self) -> CarrierProfile:
        """Return a copy of the profile with this model's cost fraction."""
        return self.profile.with_dormancy_fraction(self.fraction)


def dormancy_fraction_sweep(
    profile: CarrierProfile,
    fractions: Iterable[float] = SENSITIVITY_FRACTIONS,
) -> Mapping[float, CarrierProfile]:
    """Return ``{fraction: profile-with-that-fraction}`` for a sensitivity sweep.

    Used by the ablation benchmark that reproduces the paper's statement
    that the results "did not change appreciably" across 10–50 % fractions.
    """
    return {f: profile.with_dormancy_fraction(f) for f in fractions}
