"""Carrier RRC profiles: power levels, inactivity timers, switching costs.

These profiles encode the measured constants from the paper:

* **Table 2** — per-carrier send/receive powers, tail powers ``P_t1`` (Active)
  and ``P_t2`` (High-power idle), and inactivity timers ``t1``/``t2`` for
  T-Mobile 3G, AT&T HSPA+, Verizon 3G and Verizon LTE.
* **Table 1** — bulk UDP send/receive powers on the Galaxy Nexus (subset of
  Table 2's columns).
* **Section 2.1** — Idle→Active promotion delays per carrier (≈1.4 s AT&T 3G,
  ≈3.6 s T-Mobile 3G, ≈1.2 s Verizon 3G, ≈0.6 s Verizon LTE).
* **Section 4.1** — the offline-optimal threshold ``t_threshold`` works out
  to ≈1.2 s on AT&T 3G; each profile's switching energy ``E_switch`` is
  chosen so the derived threshold matches that anchor and stays in the 1–2 s
  range the paper reports for the other carriers.
* **Section 6.1** — fast dormancy is modelled as costing a configurable
  fraction (default 50 %) of the measured radio-off delay and energy.

All powers are stored in milliwatts and all times in seconds, matching the
paper's tables; helper properties convert to SI watts/joules where the
energy model needs them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .states import RadioState, Technology

__all__ = [
    "CarrierProfile",
    "CARRIER_PROFILES",
    "CARRIER_ORDER",
    "get_profile",
    "DEFAULT_DORMANCY_FRACTION",
]

#: Fraction of the measured radio-off cost attributed to a fast-dormancy
#: demotion (paper Section 6.1 models 50 % and checks 10/20/40 % as well).
DEFAULT_DORMANCY_FRACTION = 0.5


@dataclass(frozen=True)
class CarrierProfile:
    """Measured RRC parameters of one carrier network.

    Attributes
    ----------
    name:
        Human-readable carrier name (e.g. ``"Verizon LTE"``).
    key:
        Short machine-friendly identifier (e.g. ``"verizon_lte"``).
    technology:
        :class:`~repro.rrc.states.Technology` of the network.
    power_send_mw / power_recv_mw:
        Average power while transmitting / receiving bulk data (Table 1/2
        ``P_snd`` / ``P_rcv``), in milliwatts, with CPU and screen subtracted.
    power_active_mw:
        Tail power in the Active state (``P_t1``), milliwatts.
    power_high_idle_mw:
        Tail power in the High-power idle state (``P_t2``), milliwatts; zero
        for profiles without a FACH-like state (Verizon 3G, LTE).
    power_idle_mw:
        Radio power in the Idle state; essentially zero (the paper's plots
        show only CPU/screen draw there, which is excluded).
    t1 / t2:
        Inactivity timers in seconds (Table 2).  ``t2`` is zero when the
        network demotes directly from Active to Idle.
    promotion_delay_s:
        Idle→Active transition time (Section 2.1 measurements).
    promotion_energy_j:
        Energy consumed by one Idle→Active promotion, joules.
    radio_off_delay_s / radio_off_energy_j:
        Measured cost of turning the data radio off; fast dormancy costs
        ``dormancy_fraction`` of these.
    dormancy_fraction:
        Fraction of the radio-off cost charged to a fast-dormancy demotion.
    """

    name: str
    key: str
    technology: Technology
    power_send_mw: float
    power_recv_mw: float
    power_active_mw: float
    power_high_idle_mw: float
    t1: float
    t2: float
    promotion_delay_s: float
    promotion_energy_j: float
    radio_off_delay_s: float
    radio_off_energy_j: float
    power_idle_mw: float = 0.0
    dormancy_fraction: float = DEFAULT_DORMANCY_FRACTION

    def __post_init__(self) -> None:
        if self.t1 < 0 or self.t2 < 0:
            raise ValueError("inactivity timers must be non-negative")
        if self.promotion_delay_s < 0:
            raise ValueError("promotion delay must be non-negative")
        if not 0.0 < self.dormancy_fraction <= 1.0:
            raise ValueError(
                f"dormancy_fraction must be in (0, 1], got {self.dormancy_fraction}"
            )
        for field_name in (
            "power_send_mw",
            "power_recv_mw",
            "power_active_mw",
            "power_high_idle_mw",
            "power_idle_mw",
            "promotion_energy_j",
            "radio_off_delay_s",
            "radio_off_energy_j",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    # -- unit conversions ---------------------------------------------------------

    @property
    def power_send_w(self) -> float:
        """Transmit power in watts."""
        return self.power_send_mw / 1000.0

    @property
    def power_recv_w(self) -> float:
        """Receive power in watts."""
        return self.power_recv_mw / 1000.0

    @property
    def power_active_w(self) -> float:
        """Active-state tail power (``P_t1``) in watts."""
        return self.power_active_mw / 1000.0

    @property
    def power_high_idle_w(self) -> float:
        """High-power-idle tail power (``P_t2``) in watts."""
        return self.power_high_idle_mw / 1000.0

    @property
    def power_idle_w(self) -> float:
        """Idle-state radio power in watts (≈0)."""
        return self.power_idle_mw / 1000.0

    # -- derived RRC quantities -----------------------------------------------------

    @property
    def total_inactivity_timeout(self) -> float:
        """``t1 + t2``: idle time after which the status quo demotes to Idle."""
        return self.t1 + self.t2

    @property
    def has_high_idle_state(self) -> bool:
        """Whether the network uses an intermediate FACH-like state."""
        return self.t2 > 0 and self.power_high_idle_mw > 0

    @property
    def demotion_delay_s(self) -> float:
        """Fast-dormancy (Active→Idle) delay in seconds."""
        return self.radio_off_delay_s * self.dormancy_fraction

    @property
    def demotion_energy_j(self) -> float:
        """Fast-dormancy (Active→Idle) energy in joules."""
        return self.radio_off_energy_j * self.dormancy_fraction

    @property
    def switch_energy_j(self) -> float:
        """``E_switch``: one demotion plus one promotion, in joules.

        This is the quantity compared against the tail energy ``E(t)`` in
        the offline-optimal rule of Section 4.1.
        """
        return self.demotion_energy_j + self.promotion_energy_j

    @property
    def switch_delay_s(self) -> float:
        """Total state-switch latency (demotion plus promotion), seconds."""
        return self.demotion_delay_s + self.promotion_delay_s

    def state_power_w(self, state: RadioState) -> float:
        """Tail power drawn in ``state`` when no data is being transferred."""
        if state is RadioState.ACTIVE:
            return self.power_active_w
        if state is RadioState.HIGH_IDLE:
            return self.power_high_idle_w
        if state is RadioState.PROMOTING:
            return self.power_active_w
        return self.power_idle_w

    def transfer_power_w(self, uplink: bool) -> float:
        """Power drawn while transferring data in the given direction."""
        return self.power_send_w if uplink else self.power_recv_w

    def with_dormancy_fraction(self, fraction: float) -> "CarrierProfile":
        """Return a copy of this profile with a different dormancy cost fraction."""
        return replace(self, dormancy_fraction=fraction)

    def with_timers(self, t1: float, t2: float | None = None) -> "CarrierProfile":
        """Return a copy with different inactivity timers (for baselines/ablations)."""
        return replace(self, t1=t1, t2=self.t2 if t2 is None else t2)


def _profile(
    name: str,
    key: str,
    technology: Technology,
    *,
    psnd: float,
    prcv: float,
    pt1: float,
    pt2: float,
    t1: float,
    t2: float,
    promotion_delay: float,
    promotion_energy: float,
    radio_off_delay: float,
    radio_off_energy: float,
) -> CarrierProfile:
    return CarrierProfile(
        name=name,
        key=key,
        technology=technology,
        power_send_mw=psnd,
        power_recv_mw=prcv,
        power_active_mw=pt1,
        power_high_idle_mw=pt2,
        t1=t1,
        t2=t2,
        promotion_delay_s=promotion_delay,
        promotion_energy_j=promotion_energy,
        radio_off_delay_s=radio_off_delay,
        radio_off_energy_j=radio_off_energy,
    )


#: The four carrier profiles of Table 2.  The switching-cost constants are
#: chosen so that the derived offline threshold ``t_threshold`` (Section 4.1)
#: reproduces the paper's anchor of ≈1.2 s for AT&T and remains in the 1–2 s
#: band for the other carriers.
CARRIER_PROFILES: dict[str, CarrierProfile] = {
    "tmobile_3g": _profile(
        "T-Mobile 3G", "tmobile_3g", Technology.UMTS_3G,
        psnd=1202.0, prcv=737.0, pt1=445.0, pt2=343.0, t1=3.2, t2=16.3,
        promotion_delay=3.6, promotion_energy=0.55,
        radio_off_delay=1.6, radio_off_energy=0.70,
    ),
    "att_hspa": _profile(
        "AT&T HSPA+", "att_hspa", Technology.UMTS_3G,
        psnd=1539.0, prcv=1212.0, pt1=916.0, pt2=659.0, t1=6.2, t2=10.4,
        promotion_delay=1.4, promotion_energy=0.70,
        radio_off_delay=1.2, radio_off_energy=0.80,
    ),
    "verizon_3g": _profile(
        "Verizon 3G", "verizon_3g", Technology.UMTS_3G,
        psnd=2043.0, prcv=1177.0, pt1=1130.0, pt2=1130.0, t1=9.8, t2=0.0,
        promotion_delay=1.2, promotion_energy=0.85,
        radio_off_delay=1.0, radio_off_energy=1.00,
    ),
    "verizon_lte": _profile(
        "Verizon LTE", "verizon_lte", Technology.LTE,
        psnd=2928.0, prcv=1737.0, pt1=1325.0, pt2=0.0, t1=10.2, t2=0.0,
        promotion_delay=0.6, promotion_energy=0.50,
        radio_off_delay=0.8, radio_off_energy=0.60,
    ),
}

#: Display order used in Figures 17 and 18 and Table 3.
CARRIER_ORDER: tuple[str, ...] = (
    "tmobile_3g", "att_hspa", "verizon_3g", "verizon_lte",
)


def get_profile(key: str) -> CarrierProfile:
    """Look up a carrier profile by key (case-insensitive).

    Accepts a few aliases commonly used in the paper's text, e.g. ``"att"``
    for AT&T HSPA+ and ``"lte"`` for Verizon LTE.
    """
    normalized = key.strip().lower().replace("-", "_").replace(" ", "_")
    aliases = {
        "att": "att_hspa",
        "at&t": "att_hspa",
        "att_3g": "att_hspa",
        "tmobile": "tmobile_3g",
        "t_mobile_3g": "tmobile_3g",
        "t_mobile": "tmobile_3g",
        "verizon": "verizon_3g",
        "vzw": "verizon_3g",
        "vzw_3g": "verizon_3g",
        "vzw_lte": "verizon_lte",
        "lte": "verizon_lte",
    }
    normalized = aliases.get(normalized, normalized)
    try:
        return CARRIER_PROFILES[normalized]
    except KeyError:
        raise KeyError(
            f"unknown carrier {key!r}; known: {sorted(CARRIER_PROFILES)}"
        ) from None
