"""RRC substrate: radio states, carrier profiles, state machine, fast dormancy."""

from .drx import (
    DEFAULT_LTE_DRX,
    DrxConfig,
    DrxPhase,
    drx_timeline,
    effective_tail_power,
    profile_with_drx,
)
from .fast_dormancy import (
    SENSITIVITY_FRACTIONS,
    FastDormancyModel,
    dormancy_fraction_sweep,
)
from .signaling import (
    LTE_SIGNALING_COSTS,
    UMTS_SIGNALING_COSTS,
    SignalingCosts,
    SignalingLoad,
    compare_signaling,
    count_messages,
    signaling_costs_for,
    signaling_load,
)
from .profiles import (
    CARRIER_ORDER,
    CARRIER_PROFILES,
    DEFAULT_DORMANCY_FRACTION,
    CarrierProfile,
    get_profile,
)
from .state_machine import RrcStateMachine, StateInterval, SwitchEvent, SwitchKind
from .states import RadioState, Technology, state_name

__all__ = [
    "CARRIER_ORDER",
    "DEFAULT_LTE_DRX",
    "DrxConfig",
    "DrxPhase",
    "LTE_SIGNALING_COSTS",
    "SignalingCosts",
    "SignalingLoad",
    "UMTS_SIGNALING_COSTS",
    "compare_signaling",
    "count_messages",
    "drx_timeline",
    "effective_tail_power",
    "profile_with_drx",
    "signaling_costs_for",
    "signaling_load",
    "CARRIER_PROFILES",
    "CarrierProfile",
    "DEFAULT_DORMANCY_FRACTION",
    "FastDormancyModel",
    "RadioState",
    "RrcStateMachine",
    "SENSITIVITY_FRACTIONS",
    "StateInterval",
    "SwitchEvent",
    "SwitchKind",
    "Technology",
    "dormancy_fraction_sweep",
    "get_profile",
    "state_name",
]
