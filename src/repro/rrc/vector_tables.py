"""Precomputed constant bundle for the vectorized kernel backend.

The vector backend (:mod:`repro.sim.vector_engine`) processes one UE's
whole packet array per step instead of one heap event at a time.  Every
constant it folds into those array expressions must be the *identical*
IEEE-754 double the scalar kernel reads per event — the byte-identity
contract of :mod:`repro.rrc.tables` extended to the batch path — so a
:class:`VectorTable` snapshots, per ``(profile, data-model)`` pair, the
exact floats the scalar hot path binds:

* the RRC timer thresholds and switch costs from the profile's
  :class:`~repro.rrc.tables.TransitionTable` (``t1``, ``idle_after``,
  promotion/demotion costs), and
* the per-packet transfer-fold constants of the engine's
  :class:`~repro.energy.accounting.DataEnergyModel` (burst gap, link
  rates, direction powers, minimum packet time).

No value here is *derived* differently from the scalar path: each field
is read from the same table/model attribute the scalar kernel reads, so
a vectorized ``t + w`` or ``size / rate`` over these constants produces
bit-equal results to the per-event scalar expression (numpy float64
arithmetic is IEEE-754 double arithmetic, elementwise).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.accounting import DataEnergyModel
from .profiles import CarrierProfile
from .tables import transition_table

__all__ = ["VectorTable", "vector_table"]


@dataclass(frozen=True)
class VectorTable:
    """Flat constants for the vector backend's array expressions."""

    #: Active→demotion threshold (``t1``) and the full demotion horizon the
    #: kernel schedules inactivity-timer expiries at (``idle_after``).
    t1: float
    idle_after: float
    #: Data-energy fold constants (identical floats to the scalar kernel's
    #: per-run bindings of the same :class:`DataEnergyModel` attributes).
    burst_gap: float
    min_packet_time: float
    uplink_rate: float
    downlink_rate: float
    send_power_w: float
    recv_power_w: float


def vector_table(profile: CarrierProfile, model: DataEnergyModel) -> VectorTable:
    """Snapshot the vector-backend constants of one ``(profile, model)`` pair.

    Reads exactly the attributes the scalar kernel binds at the top of
    :meth:`~repro.sim.engine.SimulationEngine.run` — not re-derivations —
    so the batch and scalar paths share every constant bit for bit.
    """
    table = transition_table(profile)
    return VectorTable(
        t1=table.t1,
        idle_after=table.idle_after,
        burst_gap=model.burst_gap,
        min_packet_time=model.min_packet_time,
        uplink_rate=model.uplink_rate,
        downlink_rate=model.downlink_rate,
        send_power_w=model.send_power_w,
        recv_power_w=model.recv_power_w,
    )
