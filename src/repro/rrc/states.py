"""RRC state definitions for 3G (UMTS/HSPA) and LTE radios.

The Radio Resource Control (RRC) protocol places the radio in one of a
small number of states with very different power draws (paper Figure 2):

* 3G: ``CELL_DCH`` (dedicated channel, "Active"), ``CELL_FACH`` (shared
  channel, "High-power idle"), and ``CELL_PCH`` / ``IDLE`` which the paper
  groups together as "Idle" because the device draws essentially no radio
  power in either.
* LTE: ``RRC_CONNECTED`` and ``RRC_IDLE``.

To keep the simulator uniform across technologies, this module defines a
canonical three-level :class:`RadioState` (ACTIVE, HIGH_IDLE, IDLE) plus a
mapping to the technology-specific names.  LTE simply never uses
``HIGH_IDLE`` (its ``t2`` is zero).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["RadioState", "Technology", "state_name"]


class Technology(Enum):
    """Radio access technology of a carrier profile."""

    UMTS_3G = "3g"
    LTE = "lte"

    @property
    def is_lte(self) -> bool:
        """True for LTE profiles (two-state RRC machine)."""
        return self is Technology.LTE


class RadioState(Enum):
    """Canonical radio power states used by the simulator.

    ``ACTIVE`` corresponds to CELL_DCH (3G) or RRC_CONNECTED (LTE);
    ``HIGH_IDLE`` corresponds to CELL_FACH (3G only); ``IDLE`` corresponds
    to CELL_PCH / IDLE (3G) or RRC_IDLE (LTE).  ``PROMOTING`` models the
    1-4 second transition from Idle to Active during which the radio draws
    roughly active-level power but cannot yet carry data.
    """

    ACTIVE = "active"
    HIGH_IDLE = "high_idle"
    IDLE = "idle"
    PROMOTING = "promoting"

    @property
    def can_transfer(self) -> bool:
        """Whether data can be sent or received in this state."""
        return self in (RadioState.ACTIVE, RadioState.HIGH_IDLE)

    @property
    def draws_tail_power(self) -> bool:
        """Whether the state draws non-negligible power while not transferring."""
        return self in (RadioState.ACTIVE, RadioState.HIGH_IDLE, RadioState.PROMOTING)


_STATE_NAMES: dict[Technology, dict[RadioState, str]] = {
    Technology.UMTS_3G: {
        RadioState.ACTIVE: "CELL_DCH",
        RadioState.HIGH_IDLE: "CELL_FACH",
        RadioState.IDLE: "CELL_PCH/IDLE",
        RadioState.PROMOTING: "PROMOTION",
    },
    Technology.LTE: {
        RadioState.ACTIVE: "RRC_CONNECTED",
        RadioState.HIGH_IDLE: "RRC_CONNECTED(short-DRX)",
        RadioState.IDLE: "RRC_IDLE",
        RadioState.PROMOTING: "PROMOTION",
    },
}


def state_name(state: RadioState, technology: Technology) -> str:
    """Return the 3GPP name of ``state`` under ``technology``.

    For example ``state_name(RadioState.ACTIVE, Technology.UMTS_3G)`` is
    ``"CELL_DCH"`` while the same state under LTE is ``"RRC_CONNECTED"``.
    """
    return _STATE_NAMES[technology][state]
