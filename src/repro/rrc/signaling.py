"""Signalling-overhead accounting for RRC state switches.

Every promotion and demotion of the radio is accompanied by control-plane
messages between the device and the base station (RRC connection setup /
release, radio-bearer reconfiguration).  The paper measures signalling
overhead simply as the *number of state switches normalised by the status
quo* (Figures 10(b), 11(b) and 18); this module keeps that primary metric
but also exposes a finer-grained message count so the base-station-side cost
of a policy can be reasoned about (the paper's Section 8 lists this as
future work).

The per-switch message counts are the commonly cited values for UMTS and
LTE RRC procedures:

* an Idle→DCH promotion in UMTS requires on the order of 25–30 control
  messages (RRC connection setup plus radio-bearer establishment);
* a UMTS release (timer expiry or fast dormancy) takes a handful of
  messages;
* LTE connection setup/release is lighter-weight (≈10 and ≈5 messages).

The exact constants matter only for relative comparisons, and are exposed
as a dataclass so studies can plug in their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .state_machine import SwitchEvent, SwitchKind
from .states import Technology

__all__ = [
    "SignalingCosts",
    "SignalingLoad",
    "UMTS_SIGNALING_COSTS",
    "LTE_SIGNALING_COSTS",
    "signaling_costs_for",
    "count_messages",
    "signaling_load",
    "compare_signaling",
]


@dataclass(frozen=True)
class SignalingCosts:
    """Control-plane messages exchanged per RRC procedure.

    Attributes
    ----------
    promotion_messages:
        Messages for an Idle→Active promotion (connection setup).
    timer_release_messages:
        Messages for a network-initiated release after timer expiry.
    fast_dormancy_messages:
        Messages for a device-initiated (fast dormancy) release: the
        device's request plus the network's release procedure.
    """

    promotion_messages: int
    timer_release_messages: int
    fast_dormancy_messages: int

    def __post_init__(self) -> None:
        for name in (
            "promotion_messages",
            "timer_release_messages",
            "fast_dormancy_messages",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def messages_for(self, kind: SwitchKind) -> int:
        """Messages exchanged for one switch of the given kind."""
        if kind is SwitchKind.PROMOTION:
            return self.promotion_messages
        if kind is SwitchKind.TIMER_DEMOTION:
            return self.timer_release_messages
        return self.fast_dormancy_messages


#: Typical UMTS (3G) RRC procedure message counts.
UMTS_SIGNALING_COSTS = SignalingCosts(
    promotion_messages=28,
    timer_release_messages=5,
    fast_dormancy_messages=6,
)

#: Typical LTE RRC procedure message counts.
LTE_SIGNALING_COSTS = SignalingCosts(
    promotion_messages=10,
    timer_release_messages=4,
    fast_dormancy_messages=5,
)


def signaling_costs_for(technology: Technology) -> SignalingCosts:
    """Default per-procedure message counts for a radio technology."""
    if technology is Technology.LTE:
        return LTE_SIGNALING_COSTS
    return UMTS_SIGNALING_COSTS


@dataclass(frozen=True)
class SignalingLoad:
    """Aggregate control-plane load of one simulated run."""

    promotions: int
    timer_demotions: int
    fast_dormancy_demotions: int
    messages: int
    duration_s: float

    @property
    def switches(self) -> int:
        """Total number of state switches."""
        return self.promotions + self.timer_demotions + self.fast_dormancy_demotions

    @property
    def messages_per_hour(self) -> float:
        """Control messages per hour of trace time (0 for an empty run)."""
        if self.duration_s <= 0:
            return 0.0
        return self.messages * 3600.0 / self.duration_s

    @property
    def switches_per_hour(self) -> float:
        """State switches per hour of trace time (0 for an empty run)."""
        if self.duration_s <= 0:
            return 0.0
        return self.switches * 3600.0 / self.duration_s

    def normalized_switches(self, baseline: "SignalingLoad") -> float:
        """This run's switch count divided by the baseline's.

        Mirrors the paper's "number of state switches normalised by status
        quo" metric; if the baseline performed no switches the raw switch
        count is returned (a zero-switch baseline normalises anything to
        itself only when this run also made no switches).
        """
        if baseline.switches == 0:
            return float(self.switches) if self.switches else 1.0
        return self.switches / baseline.switches


def count_messages(
    switches: Iterable[SwitchEvent], costs: SignalingCosts
) -> int:
    """Total control-plane messages implied by a sequence of switch events."""
    return sum(costs.messages_for(event.kind) for event in switches)


def signaling_load(
    switches: Sequence[SwitchEvent],
    duration_s: float,
    costs: SignalingCosts | None = None,
    technology: Technology = Technology.UMTS_3G,
) -> SignalingLoad:
    """Summarise the control-plane load of one run's switch events.

    Parameters
    ----------
    switches:
        The run's :class:`~repro.rrc.state_machine.SwitchEvent` sequence.
    duration_s:
        Length of the simulated run, for per-hour rates.
    costs:
        Per-procedure message counts; defaults to the technology's typical
        values.
    technology:
        Used only to pick the default ``costs``.
    """
    if duration_s < 0:
        raise ValueError(f"duration_s must be non-negative, got {duration_s}")
    chosen = costs if costs is not None else signaling_costs_for(technology)
    promotions = sum(1 for s in switches if s.kind is SwitchKind.PROMOTION)
    timer_demotions = sum(1 for s in switches if s.kind is SwitchKind.TIMER_DEMOTION)
    dormancy = sum(1 for s in switches if s.kind is SwitchKind.FAST_DORMANCY)
    return SignalingLoad(
        promotions=promotions,
        timer_demotions=timer_demotions,
        fast_dormancy_demotions=dormancy,
        messages=count_messages(switches, chosen),
        duration_s=duration_s,
    )


def compare_signaling(
    scheme: SignalingLoad, baseline: SignalingLoad
) -> dict[str, float]:
    """Side-by-side comparison of a scheme's signalling load with a baseline."""
    return {
        "switches": float(scheme.switches),
        "baseline_switches": float(baseline.switches),
        "switches_normalized": scheme.normalized_switches(baseline),
        "messages": float(scheme.messages),
        "baseline_messages": float(baseline.messages),
        "messages_per_hour": scheme.messages_per_hour,
        "baseline_messages_per_hour": baseline.messages_per_hour,
    }
