"""MakeActive: delaying promotions to batch sessions (paper Section 5).

MakeIdle saves energy by demoting the radio aggressively, but that raises
the number of Idle→Active promotions — signalling overhead the network
operator cares about.  MakeActive attacks the overhead: when a new session
wants to start while the radio is Idle, it holds the session for a bounded
delay so that other sessions arriving in that window can share a single
promotion.  Only background (delay-tolerant) traffic should be subjected to
this; the evaluation's "MakeIdle only" configuration models the case where
all traffic is delay-sensitive.

Two variants are implemented, as in the paper:

* :class:`FixedDelayMakeActive` — the strawman: always hold the first
  session for ``T_fix_delay = k (t1 + t2)`` seconds, where ``k`` is the
  average number of bursts per radio active period observed in the trace.
* :class:`LearningMakeActive` — a bank-of-experts learner (Fixed-Share under
  a Learn-α top layer).  Expert ``i`` proposes a delay of ``i`` seconds; the
  delay actually used is the weighted average of the experts; after each
  release the experts are scored with the loss
  ``L(i) = γ·Delay(T_i) + 1/b`` and the weights updated.  The learner keeps
  roughly the same number of promotions as the fixed bound while halving
  the per-burst delay (Figure 15), and Figure 16 shows the learned delay
  shrinking as the number of buffered bursts grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..learning.learn_alpha import LearnAlpha, default_alpha_grid
from ..learning.loss import DEFAULT_GAMMA, MakeActiveLoss
from ..energy.model import TailEnergyModel
from ..rrc.profiles import CarrierProfile
from ..traces.bursts import bursts_per_active_period
from ..traces.packet import PacketTrace
from .policy import RadioPolicy

__all__ = [
    "FixedDelayMakeActive",
    "LearningMakeActive",
    "LearningRecord",
    "compute_fixed_delay_bound",
]

#: Upper bound (seconds) on any MakeActive delay, fixed or learned.  The paper
#: speaks of "delays of a few seconds"; 12 s bounds the expert grid and the
#: fixed rule alike so no background session is ever held longer than this.
MAX_DELAY_BOUND = 12.0


def compute_fixed_delay_bound(
    trace: PacketTrace, profile: CarrierProfile, max_delay: float = MAX_DELAY_BOUND
) -> float:
    """``T_fix_delay = k (t1 + t2)`` with ``k`` estimated from the trace.

    ``k`` is the average number of bursts per radio active period
    (Section 5.1); bursts are segmented at the profile's ``t_threshold`` and
    active periods at ``t1 + t2``.  The result is clamped to
    ``[0.5, max_delay]`` seconds so the delay stays within the "few seconds"
    regime the paper targets for background traffic.
    """
    if len(trace) < 2:
        return min(profile.total_inactivity_timeout, max_delay)
    threshold = TailEnergyModel(profile).t_threshold
    k = bursts_per_active_period(
        trace, burst_gap=threshold, active_window=profile.total_inactivity_timeout
    )
    bound = k * profile.total_inactivity_timeout
    return max(0.5, min(bound, max_delay))


class FixedDelayMakeActive(RadioPolicy):
    """Hold each new idle-time session for a fixed delay bound.

    Parameters
    ----------
    delay_bound:
        Explicit delay bound in seconds.  When ``None`` (the default) the
        bound is computed from the trace in :meth:`prepare` via
        :func:`compute_fixed_delay_bound`.
    """

    name = "makeactive_fixed"

    def __init__(self, delay_bound: float | None = None) -> None:
        if delay_bound is not None and delay_bound < 0:
            raise ValueError(f"delay_bound must be non-negative, got {delay_bound}")
        self._explicit_bound = delay_bound
        self._bound = delay_bound if delay_bound is not None else 0.0
        # Without an explicit bound, prepare() derives one from the trace.
        self.requires_trace = delay_bound is None

    @property
    def delay_bound(self) -> float:
        """The delay bound currently in effect."""
        return self._bound

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        if self._explicit_bound is None:
            self._bound = compute_fixed_delay_bound(trace, profile)

    def activation_delay(self, now: float) -> float:
        return self._bound


@dataclass(frozen=True)
class LearningRecord:
    """One MakeActive learning iteration (drives Figure 16)."""

    iteration: int
    time: float
    delay_used: float
    buffered_sessions: int
    mean_session_delay: float


class LearningMakeActive(RadioPolicy):
    """Bank-of-experts MakeActive with Learn-α adaptation.

    Parameters
    ----------
    max_delay:
        Largest delay any expert proposes; experts propose 1, 2, …,
        ``ceil(max_delay)`` seconds as in the paper's appendix.
    gamma:
        Weight of the aggregate-delay term in the loss (paper: 0.008).
    alphas:
        Switching rates of the α-experts; defaults to a log-spaced grid.
    """

    name = "makeactive_learn"

    def __init__(
        self,
        max_delay: float = MAX_DELAY_BOUND,
        gamma: float = DEFAULT_GAMMA,
        alphas: Sequence[float] | None = None,
    ) -> None:
        if max_delay < 1.0:
            raise ValueError(f"max_delay must be at least 1 second, got {max_delay}")
        expert_values = tuple(float(i) for i in range(1, int(math.ceil(max_delay)) + 1))
        self._learner = LearnAlpha(
            expert_values, alphas if alphas is not None else default_alpha_grid()
        )
        self._loss = MakeActiveLoss(gamma=gamma)
        self._history: list[LearningRecord] = []
        # The delay proposed by the most recent activation_delay() call,
        # consumed (set back to None) by the on_release() it paired with.
        # None means "no outstanding decision": a release that never
        # consulted the learner must not record a stale proposal.
        self._pending_delay: float | None = None

    # -- views -------------------------------------------------------------------------

    @property
    def learner(self) -> LearnAlpha:
        """The underlying two-layer learner (exposed for inspection/tests)."""
        return self._learner

    @property
    def history(self) -> tuple[LearningRecord, ...]:
        """Per-iteration records of the learned delay and buffered-session count."""
        return tuple(self._history)

    @property
    def current_delay(self) -> float:
        """The delay the learner would propose right now."""
        return self._learner.predict()

    # -- policy hooks -------------------------------------------------------------------

    def reset(self) -> None:
        self._learner.reset()
        self._history.clear()
        self._pending_delay = None

    def learning_records(self) -> Sequence[LearningRecord]:
        return tuple(self._history)

    def activation_delay(self, now: float) -> float:
        self._pending_delay = self._learner.predict()
        return self._pending_delay

    def on_release(self, release_time: float, arrival_times: Sequence[float]) -> None:
        if not arrival_times:
            return
        # Pair this release with the decision that opened its buffer window;
        # a release the learner was never asked about (no activation_delay
        # since the last release) records the realised delay instead of the
        # stale previous proposal.
        pending = self._pending_delay
        self._pending_delay = None
        first = arrival_times[0]
        delay_used = pending if pending is not None else release_time - first
        offsets = [t - first for t in arrival_times]
        losses = [self._loss(value, offsets) for value in self._learner.expert_values]
        self._learner.update(losses)
        delays = [release_time - t for t in arrival_times]
        self._history.append(
            LearningRecord(
                iteration=len(self._history) + 1,
                time=release_time,
                delay_used=delay_used,
                buffered_sessions=len(arrival_times),
                mean_session_delay=sum(delays) / len(delays),
            )
        )
