"""Radio control policy interface.

A *policy* is the decision-making part of the paper's control module
(Figure 4).  Policies are driven by the event kernel
(:mod:`repro.sim.engine`) — identically whether the policy's device is the
only UE of a :class:`~repro.sim.TraceSimulator` run or one of thousands in
a :class:`~repro.basestation.cell.CellSimulator` cell (where a granted
``dormancy_wait`` additionally passes through the base station's
:class:`~repro.basestation.policies.DormancyPolicy`).  The kernel asks the
policy two questions:

* **After a packet** — should the radio be demoted early via fast dormancy,
  and if so after how long a silent wait?  (:meth:`RadioPolicy.dormancy_wait`)
  Returning ``None`` leaves the demotion to the network's inactivity timers,
  which is what the status quo does.
* **When a new session arrives while the radio is Idle** — should the
  promotion be delayed so further sessions can be batched into it, and by
  how much?  (:meth:`RadioPolicy.activation_delay`)  Returning ``0`` promotes
  immediately.

Policies additionally observe every packet (:meth:`RadioPolicy.observe_packet`)
so online learners can build their models, receive a callback when a batch
of buffered sessions is released (:meth:`RadioPolicy.on_release`), and may
inspect the whole trace before the run starts (:meth:`RadioPolicy.prepare`)
— the Oracle and the trace-trained baselines use this, and the paper
explicitly notes it grants those baselines "significant leeway".
"""

from __future__ import annotations

from typing import Sequence

from ..rrc.profiles import CarrierProfile
from ..traces.packet import Packet, PacketTrace

__all__ = ["RadioPolicy", "StatusQuoPolicy"]


class RadioPolicy:
    """Base class for radio control policies.

    The default implementation is exactly the status quo: never trigger
    fast dormancy, never delay a promotion.  Subclasses override the
    decision hooks they care about.
    """

    #: Human-readable policy name used in result tables.
    name: str = "policy"

    #: Whether :meth:`prepare` reads the *trace* (offline/oracle policies) —
    #: as opposed to only the profile.  Streaming consumers (the cell
    #: simulator feeding lazy packet sources) refuse such policies rather
    #: than silently preparing them on an empty trace.  May be overridden
    #: per instance (e.g. a policy that only falls back to trace statistics
    #: when no explicit parameter was given).
    requires_trace: bool = False

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        """Inspect the full trace and carrier profile before the run starts.

        Online policies should only use this to read the *profile* (power
        constants, timers); offline/oracle policies may also read the trace.
        The default does nothing.
        """

    def bind_profile(self, profile: CarrierProfile) -> None:
        """Profile-only preparation — the streaming entry point.

        Streamed cells and metros never materialise a trace, so they call
        this instead of :meth:`prepare`.  Online policies override it (or
        inherit this default, which forwards to :meth:`prepare` with an
        empty trace); policies with ``requires_trace`` set are rejected by
        the streaming layers before this is reached.
        """
        self.prepare(PacketTrace(()), profile)

    def learning_records(self) -> Sequence[object]:
        """Per-iteration learning records accumulated during the run.

        Online learners (e.g. ``LearningMakeActive``) return their history
        so cell results can expose learning-curve columns; stateless
        policies return an empty sequence.
        """
        return ()

    def reset(self) -> None:
        """Clear all per-run state so the policy can be reused on another trace."""

    def observe_packet(self, time: float, packet: Packet) -> None:
        """Record that a packet was transferred at ``time`` (effective trace time)."""

    def dormancy_wait(self, now: float) -> float | None:
        """How long to wait (seconds of silence) before demoting the radio.

        Called immediately after each transferred packet, with ``now`` set to
        that packet's effective time.  Return ``None`` to leave the demotion
        to the network's inactivity timers, or a non-negative number of
        seconds: if no further packet arrives within that wait, the simulator
        issues a fast-dormancy request at ``now + wait``.
        """
        return None

    def activation_delay(self, now: float) -> float:
        """How long to buffer a new session that arrived while the radio is Idle.

        Return ``0`` to promote immediately.  A positive value ``D`` makes
        the simulator hold the session (and any further sessions arriving in
        the window) until ``now + D`` and promote once for all of them.
        """
        return 0.0

    def on_release(self, release_time: float, arrival_times: Sequence[float]) -> None:
        """Callback when buffered sessions are released at ``release_time``.

        ``arrival_times`` holds the original arrival time of each buffered
        session start; learning policies use these to compute their loss.
        """


class StatusQuoPolicy(RadioPolicy):
    """The deployed behaviour: rely purely on the network's inactivity timers.

    This is the baseline every scheme's energy saving and signalling overhead
    is measured against ("status quo" throughout the paper's evaluation).
    """

    name = "status_quo"
