"""Core contribution: MakeIdle, MakeActive, Oracle, baselines and the controller."""

from .baselines import FixedTimerPolicy, PercentileIatPolicy
from .controller import SCHEME_ORDER, CombinedPolicy, standard_policies
from .interactive import (
    DEFAULT_REGISTRY,
    ApplicationRegistry,
    ForegroundSchedule,
    InteractiveAwarePolicy,
)
from .related_work import TailEnderPolicy, TailTheftPolicy, TopHintPolicy
from .makeactive import (
    FixedDelayMakeActive,
    LearningMakeActive,
    LearningRecord,
    compute_fixed_delay_bound,
)
from .makeidle import MakeIdlePolicy, WaitDecision
from .oracle import OraclePolicy, oracle_switch_decisions
from .policy import RadioPolicy, StatusQuoPolicy

__all__ = [
    "ApplicationRegistry",
    "CombinedPolicy",
    "DEFAULT_REGISTRY",
    "ForegroundSchedule",
    "InteractiveAwarePolicy",
    "TailEnderPolicy",
    "TailTheftPolicy",
    "TopHintPolicy",
    "FixedDelayMakeActive",
    "FixedTimerPolicy",
    "LearningMakeActive",
    "LearningRecord",
    "MakeIdlePolicy",
    "OraclePolicy",
    "PercentileIatPolicy",
    "RadioPolicy",
    "SCHEME_ORDER",
    "StatusQuoPolicy",
    "WaitDecision",
    "compute_fixed_delay_bound",
    "oracle_switch_decisions",
    "standard_policies",
]
