"""Baseline policies the paper compares against.

Two prior-work baselines appear throughout the evaluation (Figures 9–12,
17, 18):

* **"4.5-second tail"** — Falaki et al. observed that 95 % of smartphone
  packet inter-arrival times are below 4.5 s and proposed a fixed inactivity
  timer of ``t1 + t2 = 4.5`` s.  Here this is :class:`FixedTimerPolicy` with
  its default timeout.
* **"95 % IAT"** — instead of the universal 4.5 s constant, compute the 95th
  percentile of the inter-arrival times *of the trace under test* and use
  that as the (fast-dormancy) inactivity timer.  The paper notes this grants
  the scheme leeway because it is trained on its own test data; we keep that
  behaviour (it is applied in :meth:`PercentileIatPolicy.prepare`) and note
  it in the docstring.
"""

from __future__ import annotations

from ..rrc.profiles import CarrierProfile
from ..traces.packet import PacketTrace
from ..traces.stats import inter_arrival_percentile
from .policy import RadioPolicy

__all__ = ["FixedTimerPolicy", "PercentileIatPolicy"]


class FixedTimerPolicy(RadioPolicy):
    """Demote the radio after a fixed period of silence (the "4.5-second tail").

    Parameters
    ----------
    timeout:
        Seconds of silence after which the radio is demoted via fast
        dormancy.  The default of 4.5 s is the value proposed by Falaki et
        al. and used in the paper's comparison.
    """

    def __init__(self, timeout: float = 4.5) -> None:
        if timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {timeout}")
        self._timeout = timeout
        self.name = f"fixed_{timeout:g}s"

    @property
    def timeout(self) -> float:
        """The fixed inactivity timeout in seconds."""
        return self._timeout

    def dormancy_wait(self, now: float) -> float | None:
        return self._timeout


class PercentileIatPolicy(RadioPolicy):
    """Use a percentile of the trace's inter-arrival times as the timeout.

    The timeout is computed in :meth:`prepare` from the very trace the policy
    is then evaluated on — the same train-on-test leeway the paper grants
    this baseline.  Traces with fewer than two packets fall back to the
    4.5-second constant.

    Parameters
    ----------
    percentile:
        Percentile of the inter-arrival time distribution to use (default
        95, the "95 % IAT" scheme).
    fallback_timeout:
        Timeout used when the trace has no inter-arrival times.
    """

    name = "p95_iat"

    def __init__(self, percentile: float = 95.0, fallback_timeout: float = 4.5) -> None:
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        if fallback_timeout < 0:
            raise ValueError("fallback_timeout must be non-negative")
        self._percentile = percentile
        self._fallback = fallback_timeout
        self._timeout = fallback_timeout
        self.name = f"p{percentile:g}_iat"

    @property
    def percentile(self) -> float:
        """The configured percentile."""
        return self._percentile

    @property
    def timeout(self) -> float:
        """The timeout currently in effect (set by :meth:`prepare`)."""
        return self._timeout

    #: The timeout is trained on the trace's inter-arrival distribution.
    requires_trace = True

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        if len(trace) < 2:
            self._timeout = self._fallback
            return
        self._timeout = inter_arrival_percentile(trace, self._percentile)

    def reset(self) -> None:
        # The timeout is derived from the trace in prepare(); nothing else to clear.
        pass

    def dormancy_wait(self, now: float) -> float | None:
        return self._timeout
