"""The control module: composing MakeIdle and MakeActive into one policy.

Figure 4 of the paper shows a single on-device control module that watches
socket activity and drives the radio; MakeIdle runs while the radio is
Active and MakeActive while it is Idle.  :class:`CombinedPolicy` composes
any demotion policy with any activation policy into that single module, and
:func:`standard_policies` builds the exact set of schemes compared in the
evaluation figures.
"""

from __future__ import annotations

from typing import Sequence

from ..learning.predictors import (
    DecayedHistogramPredictor,
    ExponentialRatePredictor,
    PredictiveMakeIdlePolicy,
)
from ..rrc.profiles import CarrierProfile
from ..traces.packet import Packet, PacketTrace
from .baselines import FixedTimerPolicy, PercentileIatPolicy
from .makeactive import FixedDelayMakeActive, LearningMakeActive
from .makeidle import MakeIdlePolicy
from .oracle import OraclePolicy
from .policy import RadioPolicy, StatusQuoPolicy

__all__ = [
    "CombinedPolicy",
    "build_scheme",
    "standard_policies",
    "SCHEME_ORDER",
]

#: Scheme keys in the order the paper's figures list them.
SCHEME_ORDER: tuple[str, ...] = (
    "fixed_4.5s",
    "p95_iat",
    "makeidle",
    "oracle",
    "makeidle+makeactive_learn",
    "makeidle+makeactive_fixed",
)


class CombinedPolicy(RadioPolicy):
    """Compose a demotion (MakeIdle-side) policy with an activation (MakeActive-side) policy.

    All observation hooks are forwarded to both components; demotion
    decisions come from ``idle_policy`` and activation decisions from
    ``active_policy``.
    """

    def __init__(
        self,
        idle_policy: RadioPolicy,
        active_policy: RadioPolicy,
        name: str | None = None,
    ) -> None:
        self._idle = idle_policy
        self._active = active_policy
        self.name = name or f"{idle_policy.name}+{active_policy.name}"
        self.requires_trace = bool(
            idle_policy.requires_trace or active_policy.requires_trace
        )

    @property
    def idle_policy(self) -> RadioPolicy:
        """The component deciding when to demote the radio."""
        return self._idle

    @property
    def active_policy(self) -> RadioPolicy:
        """The component deciding how long to buffer new sessions."""
        return self._active

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        self._idle.prepare(trace, profile)
        self._active.prepare(trace, profile)

    def bind_profile(self, profile: CarrierProfile) -> None:
        self._idle.bind_profile(profile)
        self._active.bind_profile(profile)

    def learning_records(self) -> Sequence[object]:
        return tuple(self._idle.learning_records()) + tuple(
            self._active.learning_records()
        )

    def reset(self) -> None:
        self._idle.reset()
        self._active.reset()

    def observe_packet(self, time: float, packet: Packet) -> None:
        self._idle.observe_packet(time, packet)
        self._active.observe_packet(time, packet)

    def dormancy_wait(self, now: float) -> float | None:
        return self._idle.dormancy_wait(now)

    def activation_delay(self, now: float) -> float:
        return self._active.activation_delay(now)

    def on_release(self, release_time: float, arrival_times: Sequence[float]) -> None:
        self._idle.on_release(release_time, arrival_times)
        self._active.on_release(release_time, arrival_times)


def build_scheme(scheme: str, window_size: int = 100) -> RadioPolicy:
    """Build exactly one scheme's policy — a fresh instance on every call.

    Unlike :func:`standard_policies`, which materialises the whole
    comparison set, this constructs only the requested scheme: cell
    population builders call it once per device, so each UE does O(1)
    construction work and — crucially for the online learners — owns a
    learner instance no other UE (or shard) shares.
    """
    if scheme == "status_quo":
        return StatusQuoPolicy()
    if scheme == "fixed_4.5s":
        return FixedTimerPolicy(4.5)
    if scheme == "p95_iat":
        return PercentileIatPolicy(95.0)
    if scheme == "makeidle":
        return MakeIdlePolicy(window_size=window_size)
    if scheme == "oracle":
        return OraclePolicy()
    if scheme == "makeidle+makeactive_learn":
        return CombinedPolicy(
            MakeIdlePolicy(window_size=window_size),
            LearningMakeActive(),
            name="makeidle+makeactive_learn",
        )
    if scheme == "makeidle+makeactive_fixed":
        return CombinedPolicy(
            MakeIdlePolicy(window_size=window_size),
            FixedDelayMakeActive(),
            name="makeidle+makeactive_fixed",
        )
    if scheme == "makeidle_hist":
        return PredictiveMakeIdlePolicy(
            DecayedHistogramPredictor(), name="makeidle_hist"
        )
    if scheme == "makeidle_rate":
        return PredictiveMakeIdlePolicy(
            ExponentialRatePredictor(), name="makeidle_rate"
        )
    raise ValueError(f"unknown scheme {scheme!r}")


def standard_policies(window_size: int = 100) -> dict[str, RadioPolicy]:
    """Build the six schemes compared throughout the paper's evaluation.

    Keys match :data:`SCHEME_ORDER`; the status quo is not included because
    it is the normalisation baseline rather than a compared scheme (use
    :class:`~repro.core.policy.StatusQuoPolicy` directly for it).
    """
    return {key: build_scheme(key, window_size) for key in SCHEME_ORDER}
