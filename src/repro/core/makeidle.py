"""MakeIdle: online prediction of when to demote the radio (paper Section 4).

After every packet the algorithm asks: *is this the end of a burst?*  It
cannot know, so it models the time until the next packet with the empirical
distribution of the last ``n`` inter-arrival times (a sliding window,
``n = 100`` by default — Figure 13 sweeps this) and picks the waiting time
``t_wait`` that maximises the expected energy gain of the strategy "wait
``t_wait`` seconds; if still silent, trigger fast dormancy":

* the cost of that strategy, for a next-packet gap ``G`` drawn from the
  window, is ``E(G)`` when the packet arrives during the wait (``G <= t_wait``
  — no switch happens) and ``E(t_wait) + E_switch`` when it does not;
* the cost of doing nothing is the status-quo tail energy ``E(G)`` (which
  already includes the switch cost for gaps longer than ``t1 + t2``);
* ``f(t_wait)`` is the expected difference, and MakeIdle schedules a demotion
  after ``t_wait* = argmax f`` seconds of silence whenever the maximum gain
  is positive.

This is the energy-based formalisation of the paper's two-step description:
the conditional probability ``P(no packet within t_wait + t_threshold | no
packet within t_wait)`` enters through the expectation over the window, and
"high enough" is defined — exactly as in the paper — by comparing expected
energies rather than by a fixed probability cut-off.

The candidate ``t_wait`` values are restricted to ``[0, t_threshold]``: the
paper observes that waiting longer than ``t_threshold`` leaves little room
for saving (the tail has already been mostly paid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..energy.model import TailEnergyModel
from ..rrc.profiles import CarrierProfile
from ..traces.packet import Packet, PacketTrace
from ..traces.stats import SlidingWindowDistribution
from .policy import RadioPolicy

__all__ = ["MakeIdlePolicy", "WaitDecision"]

#: Default number of recent packets whose inter-arrival times form the window.
DEFAULT_WINDOW_SIZE = 100

#: Default number of candidate waiting times evaluated in [0, t_threshold].
DEFAULT_CANDIDATE_COUNT = 24


@dataclass(frozen=True)
class WaitDecision:
    """One MakeIdle decision: the chosen wait and its expected gain."""

    time: float
    wait: float | None
    expected_gain: float

    @property
    def switched(self) -> bool:
        """Whether the decision schedules a demotion."""
        return self.wait is not None


class MakeIdlePolicy(RadioPolicy):
    """Adaptive fast-dormancy policy driven by recent inter-arrival times.

    Parameters
    ----------
    window_size:
        Number of recent inter-arrival samples kept (the paper's ``n``).
    candidate_count:
        Resolution of the ``t_wait`` grid over ``[0, t_threshold]``.
    min_samples:
        Minimum number of window samples before the policy starts issuing
        demotion decisions; below this it behaves like the status quo.
    """

    name = "makeidle"

    def __init__(
        self,
        window_size: int = DEFAULT_WINDOW_SIZE,
        candidate_count: int = DEFAULT_CANDIDATE_COUNT,
        min_samples: int = 5,
    ) -> None:
        if window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {window_size}")
        if candidate_count < 2:
            raise ValueError(f"candidate_count must be >= 2, got {candidate_count}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        self._window_size = window_size
        self._candidate_count = candidate_count
        self._min_samples = min_samples
        self._window = SlidingWindowDistribution(window_size)
        self._model: TailEnergyModel | None = None
        self._candidates: tuple[float, ...] = ()
        self._history: list[WaitDecision] = []

    # -- configuration / state views -----------------------------------------------------

    @property
    def window_size(self) -> int:
        """The sliding-window length ``n``."""
        return self._window_size

    @property
    def t_threshold(self) -> float:
        """The offline threshold of the prepared profile (0 before prepare)."""
        return self._model.t_threshold if self._model else 0.0

    @property
    def wait_history(self) -> tuple[WaitDecision, ...]:
        """Every decision taken so far (drives Figure 14)."""
        return tuple(self._history)

    @property
    def window(self) -> SlidingWindowDistribution:
        """The sliding inter-arrival window (exposed for inspection/tests)."""
        return self._window

    # -- policy hooks ----------------------------------------------------------------------

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        self._model = TailEnergyModel(profile)
        threshold = self._model.t_threshold
        step = threshold / (self._candidate_count - 1)
        self._candidates = tuple(i * step for i in range(self._candidate_count))

    def reset(self) -> None:
        self._window.reset()
        self._history.clear()

    def observe_packet(self, time: float, packet: Packet) -> None:
        self._window.observe(time)

    def dormancy_wait(self, now: float) -> float | None:
        if self._model is None:
            raise RuntimeError("MakeIdlePolicy.prepare() must be called before use")
        if not self._window.is_warm(self._min_samples):
            self._history.append(WaitDecision(now, None, 0.0))
            return None
        wait, gain = self.best_wait()
        decision = WaitDecision(now, wait if gain > 0 else None, gain)
        self._history.append(decision)
        return decision.wait

    # -- the decision computation ------------------------------------------------------------

    def best_wait(self) -> tuple[float, float]:
        """Return ``(t_wait*, f(t_wait*))`` under the current window.

        ``f`` is the expected status-quo cost minus the expected cost of
        waiting then switching; a positive value means switching is expected
        to pay off.
        """
        model = self._model
        if model is None:
            raise RuntimeError("MakeIdlePolicy.prepare() must be called before use")
        gaps = self._window.samples
        if not gaps:
            return 0.0, 0.0
        status_quo_cost = sum(model.tail_energy(g) for g in gaps) / len(gaps)
        best_wait = self._candidates[0]
        best_gain = float("-inf")
        for wait in self._candidates:
            cost = self._wait_then_switch_cost(wait, gaps)
            gain = status_quo_cost - cost
            if gain > best_gain:
                best_gain = gain
                best_wait = wait
        return best_wait, best_gain

    def expected_gain(self, wait: float) -> float:
        """``f(wait)`` for an arbitrary waiting time (diagnostic helper)."""
        model = self._model
        if model is None:
            raise RuntimeError("MakeIdlePolicy.prepare() must be called before use")
        gaps = self._window.samples
        if not gaps:
            return 0.0
        status_quo_cost = sum(model.tail_energy(g) for g in gaps) / len(gaps)
        return status_quo_cost - self._wait_then_switch_cost(wait, gaps)

    def conditional_no_packet_probability(self, wait: float) -> float:
        """The paper's ``P(t_wait)``: P(no packet in wait + t_threshold | none in wait)."""
        threshold = self.t_threshold
        return self._window.probability_no_packet(wait, threshold)

    def _wait_then_switch_cost(self, wait: float, gaps: Sequence[float]) -> float:
        """Expected cost of waiting ``wait`` seconds then demoting, under ``gaps``."""
        model = self._model
        assert model is not None
        total = 0.0
        switch_cost = model.switch_energy
        for gap in gaps:
            if gap <= wait:
                # The next packet arrives before we would have switched: we
                # pay the tail until it arrives and no switch happens.
                total += model.wait_energy(gap)
            else:
                total += model.wait_energy(wait) + switch_cost
        return total / len(gaps)
