"""Interactive-application awareness for MakeActive (paper Section 6.5).

MakeActive deliberately delays traffic, which is only acceptable for
background applications.  The paper's suggested deployment is that "the
control module maintain a list of delay-sensitive or interactive
applications; when any of these applications is running in the foreground,
the system disables MakeActive".  This module implements that mechanism:

* :class:`ApplicationRegistry` holds the delay-sensitivity classification of
  application labels (the ``app`` field carried on every packet);
* :class:`ForegroundSchedule` records which application is in the foreground
  over time (a step function, e.g. derived from screen/app-switch logs);
* :class:`InteractiveAwarePolicy` wraps any combined policy and suppresses
  its activation delays whenever an interactive application is in the
  foreground (and, optionally, whenever the *arriving session itself*
  belongs to an interactive application).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..rrc.profiles import CarrierProfile
from ..traces.packet import Packet, PacketTrace
from .policy import RadioPolicy

__all__ = [
    "ApplicationRegistry",
    "DEFAULT_REGISTRY",
    "ForegroundSchedule",
    "InteractiveAwarePolicy",
]


class ApplicationRegistry:
    """Classification of application labels as interactive or background.

    Unknown applications default to *interactive* — the conservative choice,
    since wrongly delaying an interactive application hurts the user while
    wrongly not delaying a background one only costs some signalling.
    """

    def __init__(
        self,
        interactive: Iterable[str] = (),
        background: Iterable[str] = (),
        default_interactive: bool = True,
    ) -> None:
        self._interactive = {label.lower() for label in interactive}
        self._background = {label.lower() for label in background}
        overlap = self._interactive & self._background
        if overlap:
            raise ValueError(
                f"labels classified both interactive and background: {sorted(overlap)}"
            )
        self._default_interactive = default_interactive

    @property
    def interactive_labels(self) -> frozenset[str]:
        """Labels registered as interactive."""
        return frozenset(self._interactive)

    @property
    def background_labels(self) -> frozenset[str]:
        """Labels registered as background."""
        return frozenset(self._background)

    def register(self, label: str, interactive: bool) -> None:
        """Add or reclassify one application label."""
        key = label.lower()
        self._interactive.discard(key)
        self._background.discard(key)
        (self._interactive if interactive else self._background).add(key)

    def is_interactive(self, label: str) -> bool:
        """Whether packets labelled ``label`` belong to an interactive app."""
        key = label.lower()
        if key in self._interactive:
            return True
        if key in self._background:
            return False
        return self._default_interactive

    def is_background(self, label: str) -> bool:
        """Whether packets labelled ``label`` may be delayed by MakeActive."""
        return not self.is_interactive(label)


#: Classification of the paper's seven application categories (Section 6.1):
#: everything described as a background/"always on" workload may be delayed,
#: while the interactive foreground workloads must not be.
DEFAULT_REGISTRY = ApplicationRegistry(
    interactive=("social", "finance", "web", "browser"),
    background=("news", "im", "microblog", "game", "email", "sync"),
)


@dataclass(frozen=True)
class ForegroundInterval:
    """The application ``app`` was in the foreground from ``start`` to ``end``."""

    start: float
    end: float
    app: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("interval end must be >= start")


class ForegroundSchedule:
    """Step function recording which application is in the foreground.

    Times outside every interval mean the screen is off / the launcher is
    showing, i.e. no interactive application is in the foreground.
    """

    def __init__(self, intervals: Iterable[ForegroundInterval] = ()) -> None:
        ordered = sorted(intervals, key=lambda i: i.start)
        for first, second in zip(ordered, ordered[1:]):
            if second.start < first.end:
                raise ValueError(
                    "foreground intervals must not overlap: "
                    f"{first} overlaps {second}"
                )
        self._intervals = tuple(ordered)
        self._starts = tuple(i.start for i in ordered)

    @property
    def intervals(self) -> tuple[ForegroundInterval, ...]:
        """The schedule's intervals in chronological order."""
        return self._intervals

    def foreground_app(self, time: float) -> str | None:
        """The application in the foreground at ``time`` (``None`` if none)."""
        index = bisect_right(self._starts, time) - 1
        if index < 0:
            return None
        interval = self._intervals[index]
        return interval.app if time < interval.end or time == interval.start else None

    @classmethod
    def always(cls, app: str, duration: float) -> "ForegroundSchedule":
        """A schedule with ``app`` in the foreground for the whole run."""
        return cls([ForegroundInterval(0.0, duration, app)])


class InteractiveAwarePolicy(RadioPolicy):
    """Wrap a policy and disable its MakeActive side around interactive use.

    Activation delays from the wrapped policy are forced to zero when

    * an interactive application is currently in the foreground (per the
      schedule and registry), or
    * the arriving session itself belongs to an interactive application and
      ``protect_interactive_sessions`` is set (it must not be delayed even
      if the screen is off — e.g. a foreground app's first request).

    On a real device the control module sits in the socket layer, so it
    knows which application opened the socket that is waking the radio; in
    the trace-driven simulation that knowledge is recovered by looking up
    the application label of the packet arriving at the decision time
    (``prepare`` indexes the trace for this — it reads labels only, never
    future timing, so it is not an oracle).

    MakeIdle-side decisions (dormancy waits) pass through unchanged: early
    demotion never delays user traffic, it only costs an extra promotion.
    """

    def __init__(
        self,
        inner: RadioPolicy,
        registry: ApplicationRegistry | None = None,
        schedule: ForegroundSchedule | None = None,
        protect_interactive_sessions: bool = True,
    ) -> None:
        self._inner = inner
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._schedule = schedule if schedule is not None else ForegroundSchedule()
        self._protect_sessions = protect_interactive_sessions
        self._app_at_time: dict[float, str] = {}
        self._last_app: str = ""
        self._suppressed = 0
        self.name = f"interactive_aware[{inner.name}]"

    @property
    def inner(self) -> RadioPolicy:
        """The wrapped policy."""
        return self._inner

    @property
    def suppressed_delays(self) -> int:
        """How many activation delays were forced to zero so far."""
        return self._suppressed

    #: Indexes the trace's per-packet application labels ahead of time.
    requires_trace = True

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        # Index which application label is waking the radio at each arrival
        # time (the socket-layer knowledge a real control module has).
        self._app_at_time = {}
        for packet in trace:
            self._app_at_time.setdefault(packet.timestamp, packet.app)
        self._inner.prepare(trace, profile)

    def reset(self) -> None:
        self._inner.reset()
        self._last_app = ""
        self._suppressed = 0
        # The trace index from prepare() is kept: it is static workload
        # metadata, not per-run learning state.

    def observe_packet(self, time: float, packet: Packet) -> None:
        self._last_app = packet.app
        self._inner.observe_packet(time, packet)

    def dormancy_wait(self, now: float) -> float | None:
        return self._inner.dormancy_wait(now)

    def activation_delay(self, now: float) -> float:
        delay = self._inner.activation_delay(now)
        if delay <= 0:
            return delay
        if self._foreground_is_interactive(now) or self._session_is_interactive(now):
            self._suppressed += 1
            return 0.0
        return delay

    def on_release(self, release_time: float, arrival_times: Sequence[float]) -> None:
        self._inner.on_release(release_time, arrival_times)

    def _foreground_is_interactive(self, now: float) -> bool:
        app = self._schedule.foreground_app(now)
        return app is not None and self._registry.is_interactive(app)

    def _session_is_interactive(self, now: float) -> bool:
        if not self._protect_sessions:
            return False
        app = self._app_at_time.get(now, self._last_app)
        if not app:
            return False
        return self._registry.is_interactive(app)
