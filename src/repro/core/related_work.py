"""Policies modelling the related-work comparison points (paper Section 7).

The paper positions MakeIdle/MakeActive against three families of prior
tail-energy work.  To make those comparisons runnable inside this library's
simulator, each family is implemented as a :class:`~repro.core.policy.RadioPolicy`:

* **TOP** (Qian et al., ICNP 2010) — tail cutting driven by *application
  hints*: the application tells the OS when its transfer is complete, and
  the OS triggers fast dormancy immediately.  Our :class:`TopHintPolicy`
  models the hint as knowledge of the upcoming gap (like the Oracle) but
  corrupted with a configurable error rate, because the paper's criticism is
  precisely that "it is not clear how each application should make these
  predictions".
* **TailEnder** (Balasubramanian et al., IMC 2009) — delay-tolerant
  transfers are deferred up to a long deadline (they evaluate 10 minutes)
  so that many transfers share one tail.  :class:`TailEnderPolicy` batches
  session starts up to such a deadline; it does not touch demotions.
* **TailTheft** (Liu et al., MobiArch 2011) — delay-tolerant transfers are
  queued and piggy-backed onto the tails created by delay-sensitive
  traffic.  :class:`TailTheftPolicy` approximates this by delaying
  background sessions up to a timeout but releasing them immediately
  whenever foreground traffic has just activated the radio.

These are faithful to the *mechanism* of each proposal at the granularity
this simulator models (packet timestamps and radio states); they are not
re-implementations of the original systems, which required application
modifications the paper explicitly avoids.
"""

from __future__ import annotations

import random

from ..energy.model import TailEnergyModel
from ..rrc.profiles import CarrierProfile
from ..traces.packet import Packet, PacketTrace
from .policy import RadioPolicy

__all__ = ["TopHintPolicy", "TailEnderPolicy", "TailTheftPolicy"]


class TopHintPolicy(RadioPolicy):
    """Tail cutting from application hints (TOP), with imperfect hints.

    After each packet the policy consults the hint: with probability
    ``hint_accuracy`` the hint is correct (equal to the true upcoming gap,
    which the policy reads from the trace like the Oracle does), otherwise
    the hint is drawn uniformly from the recently observed gaps — i.e. the
    application guesses from its own history.  The radio is demoted
    immediately when the hinted gap exceeds the offline threshold.

    Parameters
    ----------
    hint_accuracy:
        Probability that the application's completion hint is correct.
        1.0 reproduces the Oracle; 0.0 is an application guessing blindly.
    seed:
        Seed for the hint-corruption randomness (deterministic runs).
    """

    def __init__(self, hint_accuracy: float = 0.9, seed: int = 0) -> None:
        if not 0.0 <= hint_accuracy <= 1.0:
            raise ValueError(
                f"hint_accuracy must be in [0, 1], got {hint_accuracy}"
            )
        self._hint_accuracy = hint_accuracy
        self._seed = seed
        self._rng = random.Random(seed)
        self._threshold = 0.0
        self._next_gap: dict[float, float] = {}
        self._recent_gaps: list[float] = []
        self.name = f"top[acc={hint_accuracy:.2f}]"

    @property
    def hint_accuracy(self) -> float:
        """Probability that an application hint is correct."""
        return self._hint_accuracy

    @property
    def t_threshold(self) -> float:
        """Offline demotion threshold of the prepared profile."""
        return self._threshold

    #: Hints are oracle-derived: the true next-gap table is read off the trace.
    requires_trace = True

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        self._threshold = TailEnergyModel(profile).t_threshold
        timestamps = trace.timestamps
        self._next_gap = {
            start: end - start for start, end in zip(timestamps, timestamps[1:])
        }

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._recent_gaps = []

    def observe_packet(self, time: float, packet: Packet) -> None:
        del packet
        self._recent_gaps.append(time)
        if len(self._recent_gaps) > 256:
            self._recent_gaps = self._recent_gaps[-256:]

    def dormancy_wait(self, now: float) -> float | None:
        true_gap = self._next_gap.get(now)
        hinted_gap = self._hint_for(now, true_gap)
        if hinted_gap is None:
            return None
        return 0.0 if hinted_gap > self._threshold else None

    def _hint_for(self, now: float, true_gap: float | None) -> float | None:
        """The gap the application reports: truthful or guessed from history."""
        if true_gap is None:
            # Last packet of the trace: a completion hint is always right.
            return float("inf")
        if self._rng.random() < self._hint_accuracy:
            return true_gap
        observed = [
            b - a for a, b in zip(self._recent_gaps, self._recent_gaps[1:])
        ]
        if not observed:
            return None
        return self._rng.choice(observed)


class TailEnderPolicy(RadioPolicy):
    """TailEnder-style deadline batching of delay-tolerant sessions.

    Every session start that finds the radio Idle is deferred by the
    application-declared deadline, so transfers accumulate and share one
    promotion and one tail.  The deadline is global (TailEnder lets each
    application choose; the evaluation in the original paper uses values up
    to 10 minutes, which is the default here to match their setting).
    Demotion is left to the network's inactivity timers — TailEnder predates
    usable fast dormancy.
    """

    name = "tailender"

    def __init__(self, deadline_s: float = 600.0) -> None:
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self._deadline_s = deadline_s

    @property
    def deadline_s(self) -> float:
        """Maximum deferral applied to a delay-tolerant session start."""
        return self._deadline_s

    def activation_delay(self, now: float) -> float:
        del now
        return self._deadline_s


class TailTheftPolicy(RadioPolicy):
    """TailTheft-style piggy-backing of background traffic onto existing tails.

    Background sessions are queued for up to ``timeout_s`` seconds; whenever
    the radio has just been active (a packet was seen within
    ``recent_activity_s``), the queue is released immediately so the
    deferred transfers ride the tail that is already being paid for.  The
    result sits between TailEnder (always waits the full deadline) and the
    status quo (never waits).
    """

    name = "tailtheft"

    def __init__(self, timeout_s: float = 60.0, recent_activity_s: float = 2.0) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if recent_activity_s < 0:
            raise ValueError(
                f"recent_activity_s must be non-negative, got {recent_activity_s}"
            )
        self._timeout_s = timeout_s
        self._recent_activity_s = recent_activity_s
        self._last_packet_time: float | None = None

    @property
    def timeout_s(self) -> float:
        """Maximum queueing time for a background session."""
        return self._timeout_s

    def reset(self) -> None:
        self._last_packet_time = None

    def observe_packet(self, time: float, packet: Packet) -> None:
        del packet
        self._last_packet_time = time

    def activation_delay(self, now: float) -> float:
        if (
            self._last_packet_time is not None
            and now - self._last_packet_time <= self._recent_activity_s
        ):
            return 0.0
        return self._timeout_s
