"""Oracle policy: the offline-optimal demotion rule of Section 4.1.

Given the full packet trace, the optimal (no-delay) decision after each
packet is simple: demote immediately if and only if the gap to the next
packet exceeds ``t_threshold``, the point where the switch round-trip energy
``E_switch`` becomes cheaper than riding the inactivity timers (the paper
proves ``E(t)`` is non-decreasing so the rule is a threshold rule).

The Oracle provides the upper bound on savings achievable *without delaying
any traffic* and also serves as the ground truth against which the false
switch / missed switch rates of the online algorithms are computed
(Figure 12).
"""

from __future__ import annotations

import bisect

from ..energy.model import TailEnergyModel
from ..rrc.profiles import CarrierProfile
from ..traces.packet import Packet, PacketTrace
from .policy import RadioPolicy

__all__ = ["OraclePolicy", "oracle_switch_decisions"]


class OraclePolicy(RadioPolicy):
    """Offline-optimal MakeIdle: switch exactly when the coming gap warrants it.

    The policy reads the full trace in :meth:`prepare` (this is what makes
    it an oracle) and, after each packet, demotes immediately when the next
    packet is more than ``t_threshold`` seconds away.  It never delays
    promotions, so its savings are the paper's "maximum achievable energy
    savings without delaying any traffic".
    """

    name = "oracle"

    def __init__(self) -> None:
        self._timestamps: tuple[float, ...] = ()
        self._threshold: float = 0.0

    @property
    def t_threshold(self) -> float:
        """The offline-optimal gap threshold for the prepared profile."""
        return self._threshold

    #: The oracle reads the whole trace ahead of time, by definition.
    requires_trace = True

    def prepare(self, trace: PacketTrace, profile: CarrierProfile) -> None:
        self._timestamps = trace.timestamps
        self._threshold = TailEnergyModel(profile).t_threshold

    def reset(self) -> None:
        # Trace knowledge is (re)installed by prepare(); nothing per-run.
        pass

    def dormancy_wait(self, now: float) -> float | None:
        """Demote immediately iff no packet arrives within ``t_threshold`` of ``now``.

        ``now`` is the effective time of the packet just transferred; the
        oracle looks up the next original timestamp strictly after ``now``.
        If the trace is exhausted the oracle switches (there will never be
        another packet).
        """
        index = bisect.bisect_right(self._timestamps, now)
        if index >= len(self._timestamps):
            return 0.0
        gap = self._timestamps[index] - now
        return 0.0 if gap > self._threshold else None


def oracle_switch_decisions(
    trace: PacketTrace, profile: CarrierProfile
) -> list[bool]:
    """Ground-truth switch decision after each packet of ``trace``.

    Entry ``i`` is ``True`` when the offline-optimal rule demotes the radio
    after packet ``i`` (i.e. the gap to packet ``i + 1`` exceeds
    ``t_threshold``; the final packet always counts as a switch).  Used by
    the confusion metrics of Figure 12.
    """
    threshold = TailEnergyModel(profile).t_threshold
    decisions: list[bool] = []
    timestamps = trace.timestamps
    for index in range(len(timestamps)):
        if index + 1 >= len(timestamps):
            decisions.append(True)
        else:
            decisions.append(timestamps[index + 1] - timestamps[index] > threshold)
    return decisions
