"""The built-in metro library: named, serialisable metro topologies.

Presets are what the plan/CLI layers reference by name (``sweep --metro
commuter_2cell``) and what plan serialisation round-trips through —
an inline :class:`~repro.metro.topology.Metro` works with the API but,
like inline traces, refuses ``to_dict``.  Builders are registered as
factories and instantiated on first use, so importing this module stays
cheap and scenario lookups happen lazily.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..api.cells import DormancySpec
from .mobility import CommuterMobility, ShuffleMobility
from .topology import Metro, MetroCell

__all__ = ["METRO_BUILDERS", "get_metro", "metro_names"]


def _commuter_2cell() -> Metro:
    """The canonical 2-cell commuter study: suburb homes, downtown offices.

    The work cell runs a ``load_aware`` station (the congested downtown
    site is where denial behaviour matters); the home cell accepts every
    request.  Capacities are advisory sizing for utilisation tables.
    """
    return Metro(
        name="commuter_2cell",
        cells=(
            MetroCell(name="home", capacity=4000),
            MetroCell(name="work", capacity=2500,
                      dormancy=DormancySpec(scheme="load_aware", param=240)),
        ),
        mobility=CommuterMobility(home="home", work="work",
                                  commuter_fraction=0.7),
        description="Diurnal suburb/downtown commuter flows, 70% commuting.",
    )


def _metro_4cell() -> Metro:
    """A 4-cell shuffle metro: the handover-rate stress topology.

    Exponential 10-minute residencies over four heterogeneous stations —
    the shape used by the ``metro_250k`` benchmark section.
    """
    return Metro(
        name="metro_4cell",
        cells=(
            MetroCell(name="north", capacity=3000),
            MetroCell(name="east", capacity=3000,
                      dormancy=DormancySpec(scheme="rate_limited", param=30)),
            MetroCell(name="south", capacity=3000,
                      dormancy=DormancySpec(scheme="load_aware", param=300)),
            MetroCell(name="west", capacity=3000),
        ),
        mobility=ShuffleMobility(mean_residency_s=600.0),
        description="Four-cell random-shuffle mobility stress topology.",
    )


#: Factory registry: name -> zero-arg builder (see module docstring).
METRO_BUILDERS: Dict[str, Callable[[], Metro]] = {
    "commuter_2cell": _commuter_2cell,
    "metro_4cell": _metro_4cell,
}

_CACHE: Dict[str, Metro] = {}


def metro_names() -> tuple[str, ...]:
    """The registered preset names, sorted."""
    return tuple(sorted(METRO_BUILDERS))


def get_metro(name: str) -> Metro:
    """Look up a preset metro by name (building it on first use)."""
    try:
        builder = METRO_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown metro {name!r}; known: {list(metro_names())}"
        ) from None
    if name not in _CACHE:
        metro = builder()
        if metro.name != name:
            raise ValueError(
                f"metro builder {name!r} produced mismatched name "
                f"{metro.name!r}"
            )
        _CACHE[name] = metro
    return _CACHE[name]
