"""Metro topology: named cells, per-cell station policy, and mobility.

A :class:`Metro` is the multi-cell layer above the single-cell façade:
a set of named :class:`MetroCell`\\ s — each with its own station
(dormancy) policy, advisory capacity, and optional traffic scenario —
plus a mobility model that assigns every UE a cell-residency timeline.
The topology itself is pure description; execution lives in
:mod:`repro.metro.execution`, which turns each residency interval into a
windowed single-cell device and reuses the sharded cell machinery
underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..api.cells import DORMANCY_SCHEMES, DormancySpec
from ..scenarios import Scenario, get_scenario
from .mobility import MobilityModel, Moves, mobility_from_dict

__all__ = ["Metro", "MetroCell"]


@dataclass(frozen=True)
class MetroCell:
    """One named cell of a metro.

    ``dormancy`` is the *station-side* policy this cell's base station
    runs (``None`` means accept every fast-dormancy request, the
    ``status_quo``-friendly default).  ``capacity`` is an advisory
    simultaneous-connection budget: utilisation is reported against it
    but admission is never blocked, matching the paper's measurement
    (not admission-control) viewpoint.  ``scenario`` optionally gives
    the cell's *home population* a mixed-cohort workload; devices homed
    in a scenario-less cell run the metro-level application mix.
    """

    name: str
    capacity: int = 0
    dormancy: DormancySpec | None = None
    scenario: Scenario | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cell name must be non-empty")
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")

    @property
    def fingerprint(self) -> tuple:
        return (
            "metrocell",
            self.name,
            self.capacity,
            self.dormancy.key if self.dormancy is not None else None,
            self.scenario.fingerprint if self.scenario is not None else None,
        )

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"name": self.name, "capacity": self.capacity}
        if self.dormancy is not None:
            data["dormancy"] = {"scheme": self.dormancy.scheme,
                                "param": self.dormancy.param}
        if self.scenario is not None:
            data["scenario"] = self.scenario.name
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetroCell":
        dormancy = None
        if "dormancy" in data and data["dormancy"] is not None:
            dormancy = DormancySpec(**data["dormancy"])
        scenario = None
        if data.get("scenario"):
            scenario = get_scenario(data["scenario"])
        return cls(name=data["name"], capacity=int(data.get("capacity", 0)),
                   dormancy=dormancy, scenario=scenario)


@dataclass(frozen=True)
class Metro:
    """A multi-cell topology with mobility (see module docstring).

    ``apps`` is the workload mix for devices homed in cells without a
    scenario: device ``i`` runs ``apps[i % len(apps)]`` with the hashed
    per-device seed ``crc32("metroapp/<seed>/<i>")`` (DESIGN.md §3).
    """

    name: str
    cells: tuple[MetroCell, ...]
    mobility: MobilityModel
    apps: tuple[str, ...] = ("im", "email", "news")
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("metro name must be non-empty")
        if len(self.cells) < 2:
            raise ValueError(
                f"a metro needs at least two cells, got {len(self.cells)}"
            )
        names = [cell.name for cell in self.cells]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cell names in metro: {names}")
        if not self.apps:
            raise ValueError("metro apps mix must be non-empty")
        from ..traces.synthetic import APPLICATION_PROFILES

        for app in self.apps:
            if app.lower() not in APPLICATION_PROFILES:
                raise ValueError(
                    f"unknown application {app!r}; known: "
                    f"{sorted(APPLICATION_PROFILES)}"
                )
        for cell in self.cells:
            if cell.dormancy is not None and (
                    cell.dormancy.scheme not in DORMANCY_SCHEMES):
                raise ValueError(
                    f"cell {cell.name!r}: unknown dormancy scheme "
                    f"{cell.dormancy.scheme!r}"
                )
        self.mobility.validate_cells(names)

    @property
    def cell_names(self) -> tuple[str, ...]:
        return tuple(cell.name for cell in self.cells)

    def cell_index(self, name: str) -> int:
        for i, cell in enumerate(self.cells):
            if cell.name == name:
                return i
        raise KeyError(f"no cell named {name!r} in metro {self.name!r}")

    def timeline(self, index: int, seed: int, duration_s: float) -> Moves:
        """UE ``index``'s residency timeline — pure in (index, seed)."""
        return self.mobility.moves(index, seed, duration_s, self.cell_names)

    @property
    def fingerprint(self) -> tuple:
        return (
            "metro",
            self.name,
            tuple(cell.fingerprint for cell in self.cells),
            self.mobility.fingerprint,
            self.apps,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "cells": [cell.to_dict() for cell in self.cells],
            "mobility": self.mobility.to_dict(),
            "apps": list(self.apps),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Metro":
        return cls(
            name=data["name"],
            cells=tuple(MetroCell.from_dict(c) for c in data["cells"]),
            mobility=mobility_from_dict(data["mobility"]),
            apps=tuple(data.get("apps", ("im", "email", "news"))),
            description=data.get("description", ""),
        )
