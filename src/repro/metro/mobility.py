"""Mobility models: shard-invariant cell-residency timelines.

A mobility model answers one question: *which cell does UE ``i`` occupy
when?*  The answer is a **move list** — ``((cell, enter_time), ...)``,
first entry at time 0, strictly increasing times, consecutive cells
distinct — and it is a pure function of ``(global device index, metro
seed)``: every random draw comes from a generator seeded with the hashed
derivation ``crc32("metro/<seed>/<index>")`` (the substitution rule of
``docs/DESIGN.md`` §3 — linear seed strides collide across devices at
scale, so they are never used).  Because no draw depends on which devices
share a process, any shard of the population derives exactly the
timelines a whole-population walk would, which is what keeps metro runs
byte-identical at any cell-shard partitioning.

Two models cover the paper-scale studies:

* :class:`CommuterMobility` — the diurnal home/work flow: every commuter
  starts the day in its home cell, moves to the work cell at a jittered
  departure time and returns at a jittered return time, repeating daily
  for multi-day horizons.
* :class:`ShuffleMobility` — the steady-state stress model: exponential
  residency times, each move to a uniformly random *different* cell.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from random import Random
from typing import Any, Mapping, Sequence

__all__ = [
    "CommuterMobility",
    "MobilityModel",
    "ShuffleMobility",
    "mobility_from_dict",
    "mobility_seed",
]

#: A UE's cell-residency timeline: ``(cell name, enter time)`` moves.
Moves = tuple[tuple[str, float], ...]


def mobility_seed(seed: int, index: int) -> int:
    """Hashed per-device mobility seed: ``crc32("metro/<seed>/<index>")``.

    The metro analogue of the scenario and chunk seed derivations (see
    ``docs/DESIGN.md`` §3); the ``metro/`` prefix keeps the chain disjoint
    from every other derivation, so a device's mobility draws never share
    a generator seed with its workload chunks.
    """
    return zlib.crc32(f"metro/{seed}/{index}".encode("ascii"))


class MobilityModel:
    """Base class for residency-timeline generators (see module docstring)."""

    def moves(self, index: int, seed: int, duration_s: float,
              cell_names: Sequence[str]) -> Moves:
        """UE ``index``'s move list over ``[0, duration_s)``."""
        raise NotImplementedError

    def validate_cells(self, cell_names: Sequence[str]) -> None:
        """Check the model's cell references against a metro's cell set."""

    @property
    def fingerprint(self) -> tuple:
        """Stable cache-key component identifying the timelines this builds."""
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (see :func:`mobility_from_dict`)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CommuterMobility(MobilityModel):
    """Diurnal home↔work commuter flows.

    Each commuting UE starts the day at ``home``, departs for ``work`` at
    ``depart_s + U(0, jitter_s)`` and returns at ``return_s +
    U(0, jitter_s)``, every ``period_s`` seconds (one civil day by
    default).  ``commuter_fraction`` of the population commutes; the rest
    stay home all run.  Defaults place the commute inside a standard day
    (08:00 out, 17:00 back, ±30 min).
    """

    home: str
    work: str
    depart_s: float = 8 * 3600.0
    return_s: float = 17 * 3600.0
    jitter_s: float = 1800.0
    commuter_fraction: float = 1.0
    period_s: float = 86400.0

    def __post_init__(self) -> None:
        if self.home == self.work:
            raise ValueError("home and work must be different cells")
        if self.depart_s <= 0:
            raise ValueError(f"depart_s must be positive, got {self.depart_s}")
        if self.jitter_s < 0:
            raise ValueError(f"jitter_s must be non-negative, got {self.jitter_s}")
        if self.return_s < self.depart_s + self.jitter_s:
            # Otherwise a jittered departure could land after the return,
            # producing a non-increasing move list.
            raise ValueError(
                f"return_s ({self.return_s}) must be >= depart_s + jitter_s "
                f"({self.depart_s + self.jitter_s})"
            )
        if not 0.0 <= self.commuter_fraction <= 1.0:
            raise ValueError(
                f"commuter_fraction must be in [0, 1], got "
                f"{self.commuter_fraction}"
            )
        if self.period_s < self.return_s + self.jitter_s:
            raise ValueError(
                f"period_s ({self.period_s}) must cover the jittered return "
                f"({self.return_s + self.jitter_s})"
            )

    def validate_cells(self, cell_names: Sequence[str]) -> None:
        for name in (self.home, self.work):
            if name not in cell_names:
                raise ValueError(
                    f"commuter mobility references unknown cell {name!r}; "
                    f"metro cells: {list(cell_names)}"
                )

    def moves(self, index: int, seed: int, duration_s: float,
              cell_names: Sequence[str]) -> Moves:
        rng = Random(mobility_seed(seed, index))
        if rng.random() >= self.commuter_fraction:
            return ((self.home, 0.0),)
        moves: list[tuple[str, float]] = [(self.home, 0.0)]
        day = 0
        while day * self.period_s < duration_s:
            base = day * self.period_s
            depart = base + self.depart_s + rng.uniform(0.0, self.jitter_s)
            back = base + self.return_s + rng.uniform(0.0, self.jitter_s)
            if depart < duration_s:
                moves.append((self.work, depart))
            if back < duration_s:
                moves.append((self.home, back))
            day += 1
        return tuple(moves)

    @property
    def fingerprint(self) -> tuple:
        return ("commuter", self.home, self.work, self.depart_s,
                self.return_s, self.jitter_s, self.commuter_fraction,
                self.period_s)

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": "commuter",
            "home": self.home,
            "work": self.work,
            "depart_s": self.depart_s,
            "return_s": self.return_s,
            "jitter_s": self.jitter_s,
            "commuter_fraction": self.commuter_fraction,
            "period_s": self.period_s,
        }


@dataclass(frozen=True)
class ShuffleMobility(MobilityModel):
    """Steady random shuffling between all cells.

    Each UE starts in a uniformly random cell, stays for an
    exponentially distributed residency time (mean ``mean_residency_s``)
    and then moves to a uniformly random *different* cell — the
    memoryless stress model for handover-rate studies.
    """

    mean_residency_s: float = 600.0

    def __post_init__(self) -> None:
        if self.mean_residency_s <= 0:
            raise ValueError(
                f"mean_residency_s must be positive, got "
                f"{self.mean_residency_s}"
            )

    def moves(self, index: int, seed: int, duration_s: float,
              cell_names: Sequence[str]) -> Moves:
        n = len(cell_names)
        if n < 2:
            raise ValueError("shuffle mobility needs at least two cells")
        rng = Random(mobility_seed(seed, index))
        rate = 1.0 / self.mean_residency_s
        current = rng.randrange(n)
        moves: list[tuple[str, float]] = [(cell_names[current], 0.0)]
        time = rng.expovariate(rate)
        while time < duration_s:
            current = (current + rng.randrange(1, n)) % n
            moves.append((cell_names[current], time))
            time += rng.expovariate(rate)
        return tuple(moves)

    @property
    def fingerprint(self) -> tuple:
        return ("shuffle", self.mean_residency_s)

    def to_dict(self) -> dict[str, Any]:
        return {"model": "shuffle", "mean_residency_s": self.mean_residency_s}


def mobility_from_dict(data: Mapping[str, Any]) -> MobilityModel:
    """Re-create a mobility model from its :meth:`~MobilityModel.to_dict` form."""
    payload = dict(data)
    model = payload.pop("model", None)
    if model == "commuter":
        return CommuterMobility(**payload)
    if model == "shuffle":
        return ShuffleMobility(**payload)
    raise ValueError(f"unknown mobility model {model!r}")
