"""Hierarchical metro execution: cells × shards → merged metro result.

A metro run is the cell machinery applied twice over:

1. **Across cells** — every (UE, visit) pair becomes one single-cell
   :class:`~repro.basestation.cell.DeviceSpec` in the visited cell, with
   ``attach_at``/``detach_at`` bounding the visit and the packet stream
   windowed to it (:mod:`repro.metro.streams`).  The departure side of a
   handover is the kernel's handover event (closing the visit with the
   exact ``finish`` float ops); the arrival side is the next visit's
   device, starting Idle — the RRC-release model of DESIGN.md §4.
2. **Within a cell** — the visit population is partitioned into the
   usual contiguous UE-index shards and run through
   :meth:`~repro.basestation.cell.CellSimulator.run_shard` /
   :func:`~repro.basestation.cell.merge_cell_shards` unchanged.

The one metro-specific merge step is the *global* end time: a cell's
merge may only close open timelines at the end time of the whole metro
(the latest observation across **all** cells' shards), so the global
``(last_emitted, max_now)`` pair is injected into one shard per cell
before the per-cell merges run.  Because visit membership, workloads and
timelines are pure functions of the global UE index and the metro seed,
results are byte-identical at any cell-shard count.

Visit device ids encode ``(UE, visit ordinal)`` as
``ordinal * population + index``, so ``device_id % population`` recovers
the UE and ids stay unique across all cells of the metro.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Sequence

from ..basestation.cell import (
    CellResult,
    CellShard,
    CellSimulator,
    DeviceSpec,
    merge_cell_shards,
)
from ..rrc.profiles import get_profile
from ..rrc.signaling import SignalingLoad
from ..sim.engine import resolve_end_time
from ..api.cells import (
    SHARD_SAMPLE_INTERVAL_S,
    DormancySpec,
    _shard_dormancy_policy,
    shard_sizes,
)
from ..traces.streaming import stream_application_packets
from .streams import windowed_stream
from .topology import Metro

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.spec import PolicySpec

__all__ = [
    "MetroCellResult",
    "MetroResult",
    "build_metro_shard_devices",
    "merge_metro_shards",
    "run_metro_cell_shard",
    "workload_seed",
]


def workload_seed(seed: int, index: int) -> int:
    """Hashed per-device workload seed: ``crc32("metroapp/<seed>/<index>")``.

    Used for metro devices homed in scenario-less cells (scenario-homed
    devices inherit the scenario's own ``scenario/`` derivation); the
    distinct prefix keeps metro workload seeds disjoint from both the
    mobility chain and the single-cell populations (DESIGN.md §3).
    """
    return zlib.crc32(f"metroapp/{seed}/{index}".encode("ascii"))


def build_metro_shard_devices(
    metro: Metro,
    cell_index: int,
    devices: int,
    duration_s: float,
    seed: int,
    chunk_s: float,
    policy: "PolicySpec",
    start: int,
    stop: int,
) -> list[DeviceSpec]:
    """Visit devices of UE block ``[start, stop)`` inside one cell.

    Walks each UE's residency timeline (a pure function of its *global*
    index and the metro seed) and materialises one windowed
    :class:`DeviceSpec` per visit to ``metro.cells[cell_index]``.  A UE's
    workload and cohort come from its **home cell** — the cell its
    timeline starts in — and move with it: the home scenario's cohort
    stream, or the metro application mix under the hashed
    :func:`workload_seed`.
    """
    cell = metro.cells[cell_index]
    target = cell.name
    specs: list[DeviceSpec] = []
    for index in range(start, stop):
        moves = metro.timeline(index, seed, duration_s)
        visits: list[tuple[int, float, Optional[float]]] = []
        for ordinal, (name, enter) in enumerate(moves):
            if name != target:
                continue
            nxt = ordinal + 1
            leave = moves[nxt][1] if nxt < len(moves) else None
            visits.append((ordinal, enter, leave))
        if not visits:
            continue
        home = metro.cells[metro.cell_index(moves[0][0])]
        if home.scenario is not None:
            cohort = home.scenario.cohort_at(index, devices)
            cohort_label = cohort.label
            device_policy = cohort.policy if cohort.policy is not None else policy

            def fresh_stream(scenario=home.scenario, cohort=cohort, index=index):
                return scenario.cohort_stream(
                    cohort, index, duration_s, seed, chunk_s
                )
        else:
            app = metro.apps[index % len(metro.apps)]
            device_seed = workload_seed(seed, index)
            cohort_label = ""
            device_policy = policy

            def fresh_stream(app=app, device_seed=device_seed):
                return stream_application_packets(
                    app, duration=duration_s, seed=device_seed, chunk_s=chunk_s
                )

        for ordinal, enter, leave in visits:
            if enter == 0.0 and leave is None:  # repro-lint: allow[float-eq] reason=timeline-start boundary: enter is constructed as literal 0.0 for the first visit
                # Whole-horizon stay: no window needed.
                source = fresh_stream()
            else:
                source = windowed_stream(
                    fresh_stream(), enter,
                    leave if leave is not None else math.inf,
                )
            specs.append(
                DeviceSpec(
                    device_id=ordinal * devices + index,
                    trace=source,
                    policy=device_policy.build(),
                    cohort=cohort_label,
                    attach_at=enter,
                    detach_at=leave,
                )
            )
    return specs


def run_metro_cell_shard(
    metro: Metro,
    cell_index: int,
    devices: int,
    duration_s: float,
    seed: int,
    chunk_s: float,
    policy: "PolicySpec",
    carrier: str,
    shards: int,
    shard_index: int,
    engine: str = "scalar",
) -> CellShard | None:
    """Run UE-block shard ``shard_index`` of one metro cell.

    Returns ``None`` when the block contributes no visits to the cell
    (the merge skips empty partials).  The station policy is the cell's
    own; ``load_aware`` budgets are partitioned proportionally to the
    UE-block sizes — the same documented approximation as single-cell
    sharding, with block size standing in for the (timeline-dependent)
    visit count.  ``engine`` selects the kernel backend each cell
    simulator runs (results are byte-identical either way).
    """
    sizes = shard_sizes(devices, shards)
    if not 0 <= shard_index < len(sizes):
        raise ValueError(
            f"shard index {shard_index} out of range [0, {len(sizes)})"
        )
    begin = sum(sizes[:shard_index])  # repro-lint: allow[left-fold] reason=integer shard offsets; exact order-independent arithmetic
    specs = build_metro_shard_devices(
        metro, cell_index, devices, duration_s, seed, chunk_s, policy,
        begin, begin + sizes[shard_index],
    )
    if not specs:
        return None
    dormancy = metro.cells[cell_index].dormancy or DormancySpec()
    simulator = CellSimulator(
        get_profile(carrier),
        _shard_dormancy_policy(dormancy, sizes, shard_index),
        load_sample_interval_s=(
            SHARD_SAMPLE_INTERVAL_S if len(sizes) > 1 else None
        ),
        engine=engine,
    )
    return simulator.run_shard(specs)


@dataclass(frozen=True)
class MetroCellResult:
    """One cell's closed results within a metro run."""

    name: str
    capacity: int
    #: The station policy key this cell ran (e.g. ``"accept_all"``).
    dormancy: str
    #: Visits that ended in a handover departure from this cell.
    departures: int
    #: Visits that began with a handover arrival (attach after t=0).
    arrivals: int
    result: CellResult = field(repr=False)

    @property
    def visits(self) -> int:
        return len(self.result.devices)

    @property
    def utilization(self) -> float | None:
        """Peak simultaneous non-Idle devices over capacity (advisory)."""
        if self.capacity <= 0:
            return None
        return self.result.peak_active_devices / self.capacity


@dataclass(frozen=True)
class MetroResult:
    """Merged outcome of a metro run (see module docstring).

    ``duration_s`` is the globally resolved end time shared by every
    cell, so each UE's per-cell state times tile ``[0, duration_s)``
    exactly.  Totals are sums over cells by construction.
    """

    name: str
    #: The UE population size (visits across cells exceed this).
    devices: int
    duration_s: float
    cells: tuple[MetroCellResult, ...]

    def cell(self, name: str) -> MetroCellResult:
        for entry in self.cells:
            if entry.name == name:
                return entry
        raise KeyError(f"no cell named {name!r} in metro result {self.name!r}")

    def ue_index(self, device_id: int) -> int:
        """Recover the global UE index from a visit device id."""
        return device_id % self.devices

    @property
    def handovers(self) -> int:
        """Total mid-stream handovers (equals total visits − population)."""
        return sum(entry.departures for entry in self.cells)  # repro-lint: allow[left-fold] reason=integer handover count; exact order-independent arithmetic

    @property
    def total_energy_j(self) -> float:
        total = 0.0
        for entry in self.cells:  # strict left fold in cell order (DESIGN.md §2.1)
            total += entry.result.total_energy_j
        return total

    @property
    def total_switches(self) -> int:
        return sum(entry.result.total_switches for entry in self.cells)  # repro-lint: allow[left-fold] reason=integer switch count; exact order-independent arithmetic

    @property
    def total_packets(self) -> int:
        return sum(entry.result.total_packets for entry in self.cells)  # repro-lint: allow[left-fold] reason=integer packet count; exact order-independent arithmetic

    @property
    def total_messages(self) -> int:
        return sum(entry.result.signaling.messages for entry in self.cells)  # repro-lint: allow[left-fold] reason=integer message count; exact order-independent arithmetic

    @property
    def dormancy_requests(self) -> int:
        return sum(entry.result.dormancy_requests for entry in self.cells)  # repro-lint: allow[left-fold] reason=integer request count; exact order-independent arithmetic

    @property
    def dormancy_denied(self) -> int:
        return sum(entry.result.dormancy_denied for entry in self.cells)  # repro-lint: allow[left-fold] reason=integer denial count; exact order-independent arithmetic

    @property
    def denial_rate(self) -> float:
        requests = self.dormancy_requests
        if requests == 0:
            return 0.0
        return self.dormancy_denied / requests


def merge_metro_shards(
    metro: Metro,
    devices: int,
    shards_by_cell: Sequence[Sequence[CellShard | None]],
) -> MetroResult:
    """Close every cell at the metro-wide end time and aggregate.

    ``shards_by_cell[i]`` holds cell ``i``'s partials in shard order
    (``None`` for empty partitions).  The global ``(last_emitted,
    max_now)`` pair is injected into one shard per cell so each
    :func:`merge_cell_shards` resolves the *same* end time a single
    whole-metro kernel run would; cells with no visits at all synthesise
    an empty result over that duration.
    """
    if len(shards_by_cell) != len(metro.cells):
        raise ValueError(
            f"expected shards for {len(metro.cells)} cells, "
            f"got {len(shards_by_cell)}"
        )
    flat = [s for group in shards_by_cell for s in group if s is not None]
    if not flat:
        raise ValueError("metro run produced no devices in any cell")
    emitted = [s.last_emitted for s in flat if s.last_emitted is not None]
    global_emitted = max(emitted) if emitted else None
    global_now = max(s.max_now for s in flat)
    end_time = resolve_end_time(global_emitted, global_now, flat[0].trailing_time)

    cell_results: list[MetroCellResult] = []
    for cell, group in zip(metro.cells, shards_by_cell):
        partials = [s for s in group if s is not None]
        dormancy = cell.dormancy or DormancySpec()
        if partials:
            injected = list(partials)
            injected[0] = replace(
                injected[0], last_emitted=global_emitted, max_now=global_now
            )
            result = merge_cell_shards(injected)
            # Columnar counts over the shard partials — no row views are
            # materialised just to count handover departures/arrivals.
            departures = sum(s.devices.count_closed() for s in partials)  # repro-lint: allow[left-fold] reason=integer departure count; exact order-independent arithmetic
            arrivals = sum(  # repro-lint: allow[left-fold] reason=integer arrival count; exact order-independent arithmetic
                s.devices.count_ids_at_least(devices) for s in partials
            )
        else:
            result = CellResult(
                dormancy_policy_name=dormancy.build().name,
                devices=(),
                signaling=SignalingLoad(
                    promotions=0, timer_demotions=0,
                    fast_dormancy_demotions=0, messages=0,
                    duration_s=end_time,
                ),
                duration_s=end_time,
                peak_active_devices=0,
            )
            departures = arrivals = 0
        cell_results.append(
            MetroCellResult(
                name=cell.name,
                capacity=cell.capacity,
                dormancy=dormancy.label,
                departures=departures,
                arrivals=arrivals,
                result=result,
            )
        )
    return MetroResult(
        name=metro.name,
        devices=devices,
        duration_s=end_time,
        cells=tuple(cell_results),
    )
