"""Metro layer: multi-cell topologies, mobility, and mid-stream handover.

The metro subsystem scales the per-cell machinery to a metropolitan
area: a :class:`Metro` names its cells (each with its own station
policy, advisory capacity, and optional traffic scenario), a mobility
model assigns every UE a shard-invariant cell-residency timeline, and
execution turns each residency interval into a windowed single-cell
device — the kernel's handover event closes the departing visit with
the exact merge-contract float ops, and the next visit re-attaches
Idle at the arrival cell (the RRC-release model; DESIGN.md §4).

High-level entry points live in :mod:`repro.api`
(``MetroSpec`` / ``metro()`` / plan ``.metros()``); this package holds
the topology, mobility and execution layers they drive.
"""

from .execution import (
    MetroCellResult,
    MetroResult,
    build_metro_shard_devices,
    merge_metro_shards,
    run_metro_cell_shard,
    workload_seed,
)
from .mobility import (
    CommuterMobility,
    MobilityModel,
    ShuffleMobility,
    mobility_from_dict,
    mobility_seed,
)
from .presets import METRO_BUILDERS, get_metro, metro_names
from .streams import windowed_stream
from .topology import Metro, MetroCell

__all__ = [
    "CommuterMobility",
    "METRO_BUILDERS",
    "Metro",
    "MetroCell",
    "MetroCellResult",
    "MetroResult",
    "MobilityModel",
    "ShuffleMobility",
    "build_metro_shard_devices",
    "get_metro",
    "merge_metro_shards",
    "metro_names",
    "mobility_from_dict",
    "mobility_seed",
    "run_metro_cell_shard",
    "windowed_stream",
    "workload_seed",
]
