"""Windowed packet streams: one cell visit's slice of a device workload.

A metro UE owns a single full-horizon workload (a pure function of its
global index and the metro seed); a *visit* to a cell sees only the
packets whose timestamps fall inside the visit window ``[start, stop)``.
:func:`windowed_stream` produces that slice without materialising the
whole workload, and — crucially for kernel throughput — preserves the
``packet_blocks()`` block protocol when the underlying stream offers it,
so windowed chunked workloads still take the engine's inline arrival
fast path.

Regenerating the full stream for every visit and slicing it (rather
than generating per-visit streams) is deliberate: the packet sequence a
UE emits must not depend on its mobility timeline, so the same device
under different metros — or under none — produces the same traffic.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Iterator, Sequence

from ..traces.packet import Packet

__all__ = ["windowed_stream"]


def windowed_stream(source: Iterable[Packet], start: float,
                    stop: float = math.inf) -> Iterable[Packet]:
    """Restrict ``source`` to packets with ``start <= timestamp < stop``.

    Returns a block-capable stream (with ``packet_blocks()``) when
    ``source`` has one, else a plain filtering iterator.  ``source``
    must be time-ordered, which every generator in :mod:`repro.traces`
    guarantees.
    """
    if start < 0:
        raise ValueError(f"window start must be >= 0, got {start}")
    if stop <= start:
        raise ValueError(f"window stop ({stop}) must be > start ({start})")
    if getattr(source, "packet_blocks", None) is not None:
        return _WindowedBlockStream(source, start, stop)
    return _windowed_iter(source, start, stop)


def _windowed_iter(source: Iterable[Packet], start: float,
                   stop: float) -> Iterator[Packet]:
    for packet in source:
        ts = packet.timestamp
        if ts < start:
            continue
        if ts >= stop:
            break
        yield packet


class _WindowedBlockStream:
    """Block-protocol window over a block-capable source stream."""

    __slots__ = ("_source", "_start", "_stop", "_buffer", "_index", "_cursor")

    def __init__(self, source, start: float, stop: float) -> None:
        self._source = source
        self._start = start
        self._stop = stop
        self._buffer: Sequence[Packet] = ()
        self._index = 0
        self._cursor: Iterator[Sequence[Packet]] | None = None

    def packet_blocks(self) -> Iterator[Sequence[Packet]]:
        start, stop = self._start, self._stop
        for block in self._source.packet_blocks():
            if not block:
                continue
            if block[-1].timestamp < start:
                continue
            lo = 0
            if block[0].timestamp < start:
                lo = bisect_left(block, start, key=_timestamp)
            hi = len(block)
            past_stop = block[-1].timestamp >= stop
            if past_stop:
                hi = bisect_left(block, stop, lo, key=_timestamp)
            if lo < hi:
                yield block if lo == 0 and hi == len(block) else block[lo:hi]
            if past_stop:
                # Blocks are time-ordered: everything after is >= stop.
                return

    def __iter__(self) -> "_WindowedBlockStream":
        return self

    def __next__(self) -> Packet:
        if self._cursor is None:
            self._cursor = self.packet_blocks()
        while self._index >= len(self._buffer):
            self._buffer = next(self._cursor)  # StopIteration ends us too
            self._index = 0
        packet = self._buffer[self._index]
        self._index += 1
        return packet


def _timestamp(packet: Packet) -> float:
    return packet.timestamp
