"""repro: traffic-aware 3G/LTE RRC energy saving (Deng & Balakrishnan, CoNEXT 2012).

The library reproduces the paper's system end to end:

* :mod:`repro.traces` — packet traces (pcap I/O, synthetic application and
  user workloads, burst segmentation, inter-arrival statistics);
* :mod:`repro.rrc` — the RRC state machine, carrier profiles (Table 2) and
  fast-dormancy model;
* :mod:`repro.energy` — the tail-energy model ``E(t)``, per-run energy
  accounting and the estimator-validation experiment;
* :mod:`repro.learning` — Fixed-Share bank of experts and the Learn-α
  meta-learner;
* :mod:`repro.core` — the paper's contribution: MakeIdle, MakeActive (fixed
  and learning), the Oracle and the prior-work baselines;
* :mod:`repro.sim` — the trace-driven simulator;
* :mod:`repro.metrics` and :mod:`repro.analysis` — evaluation metrics and
  per-figure experiment drivers;
* :mod:`repro.api` — the unified experiment API: declare a workload ×
  carrier × policy sweep as an immutable plan, execute it serially or on a
  process pool with baseline caching, analyse the structured run set.

Quickstart — declare a sweep, execute it, normalise against the status quo::

    from repro.api import plan, SerialRunner

    p = (plan()
         .apps("email", duration=1800.0, seed=1)
         .carriers("att_hspa")
         .policies("status_quo", "makeidle", "oracle"))
    runs = SerialRunner().run(p)          # ProcessPoolRunner(jobs=4) scales it
    for row in runs.to_records():
        print(row["scheme"], f"{row['saved_percent']:.1f}%")

Single runs remain a direct simulator call when you need live policy
objects::

    from repro import get_profile, generate_application_trace
    from repro import TraceSimulator, MakeIdlePolicy, StatusQuoPolicy

    profile = get_profile("att_hspa")
    trace = generate_application_trace("email", duration=1800, seed=1)
    sim = TraceSimulator(profile)
    baseline = sim.run(trace, StatusQuoPolicy())
    makeidle = sim.run(trace, MakeIdlePolicy())
    print(makeidle.energy_saved_fraction(baseline))

See ``docs/api.md`` for the full plan → runner → runset lifecycle.
"""

from .api import (
    ExperimentPlan,
    ProcessPoolRunner,
    ResultCache,
    RunRecord,
    RunSet,
    RunSpec,
    SerialRunner,
)
from .config import (
    ExperimentConfig,
    WorkloadConfig,
    load_config,
    load_plan,
    save_config,
    save_plan,
)
from .core import (
    ApplicationRegistry,
    CombinedPolicy,
    FixedDelayMakeActive,
    FixedTimerPolicy,
    InteractiveAwarePolicy,
    LearningMakeActive,
    MakeIdlePolicy,
    OraclePolicy,
    PercentileIatPolicy,
    RadioPolicy,
    StatusQuoPolicy,
    TailEnderPolicy,
    TailTheftPolicy,
    TopHintPolicy,
    standard_policies,
)
from .energy import (
    Battery,
    DataEnergyModel,
    DevicePowerBudget,
    EnergyAccountant,
    EnergyBreakdown,
    TailEnergyModel,
    lifetime_extension,
    project_lifetime,
)
from .rrc import (
    CARRIER_ORDER,
    CARRIER_PROFILES,
    CarrierProfile,
    RadioState,
    RrcStateMachine,
    SignalingLoad,
    Technology,
    get_profile,
    signaling_load,
)
from .scenarios import (
    Cohort,
    DeviceArchetype,
    DiurnalShape,
    Scenario,
    get_scenario,
)
from .sim import SimulationResult, TraceSimulator, build_power_trace
from .traces import (
    Direction,
    Packet,
    PacketTrace,
    generate_application_trace,
    generate_mixed_trace,
    read_pcap,
    read_tcpdump,
    user_trace,
    write_pcap,
    write_tcpdump,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationRegistry",
    "Battery",
    "CARRIER_ORDER",
    "CARRIER_PROFILES",
    "CarrierProfile",
    "Cohort",
    "CombinedPolicy",
    "DeviceArchetype",
    "DevicePowerBudget",
    "DiurnalShape",
    "ExperimentConfig",
    "Scenario",
    "ExperimentPlan",
    "ProcessPoolRunner",
    "ResultCache",
    "RunRecord",
    "RunSet",
    "RunSpec",
    "SerialRunner",
    "InteractiveAwarePolicy",
    "SignalingLoad",
    "TailEnderPolicy",
    "TailTheftPolicy",
    "TopHintPolicy",
    "WorkloadConfig",
    "DataEnergyModel",
    "Direction",
    "EnergyAccountant",
    "EnergyBreakdown",
    "FixedDelayMakeActive",
    "FixedTimerPolicy",
    "LearningMakeActive",
    "MakeIdlePolicy",
    "OraclePolicy",
    "Packet",
    "PacketTrace",
    "PercentileIatPolicy",
    "RadioPolicy",
    "RadioState",
    "RrcStateMachine",
    "SimulationResult",
    "StatusQuoPolicy",
    "TailEnergyModel",
    "Technology",
    "TraceSimulator",
    "__version__",
    "build_power_trace",
    "generate_application_trace",
    "generate_mixed_trace",
    "get_profile",
    "get_scenario",
    "lifetime_extension",
    "load_config",
    "load_plan",
    "project_lifetime",
    "read_pcap",
    "read_tcpdump",
    "save_config",
    "save_plan",
    "signaling_load",
    "standard_policies",
    "user_trace",
    "write_pcap",
    "write_tcpdump",
]
