"""Columnar struct-of-arrays storage for per-device cell results.

The population-scale results of a cell run used to be tuples of frozen
dataclasses — one :class:`~repro.basestation.cell.DeviceResult` (plus its
:class:`~repro.energy.accounting.EnergyBreakdown`) per device.  At 10^5-10^6
devices the per-object overhead dwarfs the payload: a quarter-million-visit
metro run held ~330 MB of result objects.  This module stores the same
facts as one contiguous column per field instead:

* :class:`DeviceTable` backs ``CellResult.devices``.  It is a
  ``Sequence[DeviceResult]``: indexing/iteration materialise frozen
  dataclass *row views* on demand (O(1) per row, built from the stored
  column scalars — bit-equal to the rows the old code built eagerly), so
  every existing consumer, including the digest-pinned golden builders,
  sees the exact objects it always did.
* :class:`ShardTable` backs ``CellShard.devices`` — the picklable partial
  a shard worker returns.  ``merge_cell_shards`` concatenates shard
  columns instead of chaining object tuples, and the per-device close-out
  still runs the same scalar float ops per row (see
  ``docs/DESIGN.md`` §5 for why byte-identity survives the concat-merge).
* :class:`FloatArray` is a small immutable float sequence used for
  ``CellResult.switch_times`` (potentially millions of timestamps).

Aggregates pushed down to columns replicate the old Python semantics
exactly: per-row derived values evaluate the same IEEE-754 ops in the
same order (numpy elementwise ops are bit-equal to their scalar
counterparts), and cross-device float totals use a strict left fold
(``np.add.accumulate``), matching Python's ``sum()`` — not numpy's
pairwise ``sum`` — because the golden suites pin those totals.

numpy is the preferred backing store; without it the columns degrade to
``array.array`` (same compactness, Python-loop aggregates).
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

try:  # pragma: no cover - exercised through both paths in CI
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional dependency
    _np = None

from ..energy.accounting import EnergyBreakdown
from ..rrc.states import RadioState
from ..rrc.tables import transition_table
from ..sim.results import SessionDelay

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from ..rrc.profiles import CarrierProfile
    from .cell import DeviceResult, ShardDeviceState

__all__ = ["DeviceTable", "FloatArray", "ShardTable"]

#: Fixed state <-> small-int code mapping used by ShardTable.open_state.
_STATES: tuple[RadioState, ...] = tuple(RadioState)
_STATE_CODE: dict[RadioState, int] = {s: i for i, s in enumerate(_STATES)}


# -- column primitives (numpy preferred, array.array fallback) ---------------------


def _float_col(values: Iterable[float]):
    if _np is not None:
        return _np.asarray(values, dtype=_np.float64)
    if isinstance(values, array) and values.typecode == "d":
        return values
    return array("d", values)


def _int_col(values: Iterable[int]):
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    if isinstance(values, array) and values.typecode == "q":
        return values
    return array("q", values)


def _byte_col(values: Iterable[int]):
    if _np is not None:
        return _np.asarray(values, dtype=_np.int8)
    if isinstance(values, array) and values.typecode == "b":
        return values
    return array("b", values)


def _concat(cols: Sequence[Any]):
    if len(cols) == 1:
        return cols[0]
    if _np is not None:
        return _np.concatenate(cols)
    out = array(cols[0].typecode)
    for col in cols:
        out.extend(col)
    return out


def _col_equal(a: Any, b: Any) -> bool:
    if _np is not None:
        return bool(_np.array_equal(a, b))
    return a == b


def _fold_sum(col: Any) -> float:
    """Strict left-fold float sum — exactly ``sum(col.tolist())``.

    Python's ``sum`` folds left-associatively from 0; numpy's ``sum`` is
    pairwise and may round differently.  The golden suites pin totals
    computed by the left fold, so the accumulate path (sequential by
    definition) is the only numpy reduction allowed here.
    """
    if len(col) == 0:
        return 0.0
    if _np is not None:
        return float(_np.add.accumulate(col)[-1])
    total = 0.0
    for value in col.tolist():  # the explicit left fold the docstring pins
        total += value
    return total


def _int_sum(col: Any) -> int:
    if len(col) == 0:
        return 0
    if _np is not None:
        return int(col.sum())  # repro-lint: allow[left-fold] reason=integer column; exact order-independent arithmetic
    return sum(col)  # repro-lint: allow[left-fold] reason=integer column; exact order-independent arithmetic


def _encode_labels(labels: Sequence[str]) -> tuple[Any, tuple[str, ...]]:
    """Dictionary-encode ``labels``: (codes column, first-seen categories)."""
    categories: dict[str, int] = {}
    codes = array("q")
    for label in labels:
        code = categories.get(label)
        if code is None:
            code = len(categories)
            categories[label] = code
        codes.append(code)
    return _int_col(codes), tuple(categories)


def _merge_categories(
    tables: Sequence[Any], codes_attr: str, cats_attr: str
) -> tuple[Any, tuple[str, ...]]:
    """Concatenate per-table label codes under one merged category list."""
    merged: dict[str, int] = {}
    parts = []
    for table in tables:
        cats = getattr(table, cats_attr)
        remap = []
        for label in cats:
            code = merged.get(label)
            if code is None:
                code = len(merged)
                merged[label] = code
            remap.append(code)
        codes = getattr(table, codes_attr)
        if remap == list(range(len(remap))):
            parts.append(codes)
        else:
            table_map = array("q", remap) if remap else array("q", [0])
            parts.append(_int_col([table_map[c] for c in codes.tolist()]))
    if not parts:
        return _int_col(()), ()
    return _concat(parts), tuple(merged)


def derive_tail_columns(
    profile: "CarrierProfile",
    data_time_s: Any,
    active_time_s: Any,
    high_idle_time_s: Any,
    idle_time_s: Any,
) -> tuple[Any, Any, Any]:
    """Per-device tail/idle energies from state-time columns.

    The elementwise ops are the exact scalar sequence of
    :func:`~repro.energy.accounting.assemble_breakdown` —
    ``max(0.0, active - data) * P_active`` etc. — evaluated per row, so
    each element is bit-equal to the eagerly assembled breakdown.
    """
    table = transition_table(profile)
    if _np is not None:
        active_tail_j = (
            _np.maximum(0.0, active_time_s - data_time_s) * table.power_active_w
        )
        high_idle_tail_j = high_idle_time_s * table.power_high_idle_w
        idle_j = idle_time_s * table.power_idle_w
        return active_tail_j, high_idle_tail_j, idle_j
    active_tail_j = array(
        "d",
        (
            max(0.0, a - d) * table.power_active_w
            for a, d in zip(active_time_s, data_time_s)
        ),
    )
    high_idle_tail_j = array(
        "d", (h * table.power_high_idle_w for h in high_idle_time_s)
    )
    idle_j = array("d", (i * table.power_idle_w for i in idle_time_s))
    return active_tail_j, high_idle_tail_j, idle_j


class FloatArray(Sequence[float]):
    """An immutable float sequence backed by one contiguous column.

    Drop-in for the ``tuple[float, ...]`` fields it replaces: iteration
    yields plain Python floats, equality works against other
    :class:`FloatArray` instances *and* plain lists/tuples, and storage is
    8 bytes per value instead of a boxed float object.
    """

    __slots__ = ("_data",)

    def __init__(self, values: Iterable[float] = ()) -> None:
        if isinstance(values, FloatArray):
            self._data = values._data
        else:
            self._data = _float_col(
                values if not isinstance(values, (list, tuple)) else values
            )

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return FloatArray(self._data[index])
        return float(self._data[index])

    def __iter__(self) -> Iterator[float]:
        return iter(self._data.tolist())

    def tolist(self) -> list[float]:
        """The values as a plain list of Python floats."""
        return self._data.tolist()

    def sorted(self) -> "FloatArray":
        """A sorted copy (values only — equal floats are interchangeable)."""
        if _np is not None:
            return FloatArray(_np.sort(self._data))
        return FloatArray(array("d", sorted(self._data)))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FloatArray):
            return _col_equal(self._data, other._data)
        if isinstance(other, (list, tuple)):
            if len(other) != len(self._data):
                return False
            return self._data.tolist() == [float(v) for v in other]
        return NotImplemented

    def __hash__(self) -> int:
        # Consistent with __eq__ (equal arrays share a length); collisions
        # between unequal arrays are acceptable.
        return hash(("FloatArray", len(self._data)))

    def __repr__(self) -> str:
        return f"FloatArray(n={len(self._data)})"


class _Ragged:
    """Flat columns + offsets for the per-device session-delay lists."""

    __slots__ = ("arrival", "release", "flow", "offsets")

    def __init__(self, arrival, release, flow, offsets) -> None:
        self.arrival = arrival
        self.release = release
        self.flow = flow
        self.offsets = offsets

    @classmethod
    def from_lists(cls, lists: Sequence[Sequence[SessionDelay]]) -> "_Ragged":
        arrival = array("d")
        release = array("d")
        flow = array("q")
        offsets = array("q", [0])
        total = 0
        for delays in lists:
            for delay in delays:
                arrival.append(delay.arrival_time)
                release.append(delay.release_time)
                flow.append(delay.flow_id)
            total += len(delays)
            offsets.append(total)
        return cls(
            _float_col(arrival), _float_col(release), _int_col(flow),
            _int_col(offsets),
        )

    @classmethod
    def concat(cls, parts: Sequence["_Ragged"]) -> "_Ragged":
        if len(parts) == 1:
            return parts[0]
        offsets = array("q", [0])
        base = 0
        for part in parts:
            tail = part.offsets.tolist()[1:]
            offsets.extend(v + base for v in tail)
            base = offsets[-1]
        return cls(
            _concat([p.arrival for p in parts]),
            _concat([p.release for p in parts]),
            _concat([p.flow for p in parts]),
            _int_col(offsets),
        )

    def row(self, lo: int, hi: int) -> tuple[SessionDelay, ...]:
        if lo == hi:
            return ()
        return tuple(
            SessionDelay(float(a), float(r), int(f))
            for a, r, f in zip(
                self.arrival[lo:hi].tolist(),
                self.release[lo:hi].tolist(),
                self.flow[lo:hi].tolist(),
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Ragged):
            return NotImplemented
        return (
            _col_equal(self.offsets, other.offsets)
            and _col_equal(self.arrival, other.arrival)
            and _col_equal(self.release, other.release)
            and _col_equal(self.flow, other.flow)
        )

    __hash__ = None  # type: ignore[assignment]


def _decoded_equal(
    a_codes, a_cats: tuple[str, ...], b_codes, b_cats: tuple[str, ...]
) -> bool:
    """Whether two dictionary-encoded label columns decode identically."""
    if a_cats == b_cats:
        return _col_equal(a_codes, b_codes)
    b_to_a = {i: a_cats.index(c) if c in a_cats else -1
              for i, c in enumerate(b_cats)}
    return a_codes.tolist() == [b_to_a[c] for c in b_codes.tolist()]


class DeviceTable(Sequence["DeviceResult"]):
    """Struct-of-arrays storage behind ``CellResult.devices``.

    One column per :class:`~repro.basestation.cell.DeviceResult` field
    (the breakdown's nine floats and two switch counters inlined);
    ``policy_name``/``cohort`` are dictionary-encoded, and the per-device
    session-delay samples live in flat ragged columns.  ``table[i]``
    materialises the i-th frozen dataclass row on demand.
    """

    _FLOAT_COLS = (
        "data_j", "active_tail_j", "high_idle_tail_j", "idle_j", "switch_j",
        "data_time_s", "active_time_s", "high_idle_time_s", "idle_time_s",
        "total_session_delay_s", "learn_delay_first_s", "learn_delay_final_s",
    )
    _INT_COLS = (
        "device_id", "promotions", "demotions", "packets",
        "dormancy_requests", "dormancy_granted", "dormancy_denied",
        "delayed_sessions", "learn_iterations",
    )

    __slots__ = (
        "_cols", "_policy_codes", "_policy_cats", "_cohort_codes",
        "_cohort_cats", "_delays", "_n", "_id_index", "_totals",
    )

    def __init__(
        self,
        cols: dict[str, Any],
        policy_codes,
        policy_cats: tuple[str, ...],
        cohort_codes,
        cohort_cats: tuple[str, ...],
        delays: _Ragged,
    ) -> None:
        self._cols = cols
        self._policy_codes = policy_codes
        self._policy_cats = policy_cats
        self._cohort_codes = cohort_codes
        self._cohort_cats = cohort_cats
        self._delays = delays
        self._n = len(cols["device_id"])
        self._id_index: dict[int, int] | None = None
        self._totals = None

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence["DeviceResult"]) -> "DeviceTable":
        """Build a table from materialised rows (the compatibility path)."""
        cols: dict[str, Any] = {}
        breakdown_fields = (
            "data_j", "active_tail_j", "high_idle_tail_j", "idle_j",
            "switch_j", "data_time_s", "active_time_s", "high_idle_time_s",
            "idle_time_s",
        )
        for name in breakdown_fields:
            cols[name] = _float_col(
                [getattr(r.breakdown, name) for r in rows]
            )
        for name in ("total_session_delay_s", "learn_delay_first_s",
                     "learn_delay_final_s"):
            cols[name] = _float_col([getattr(r, name) for r in rows])
        for name in ("promotions", "demotions"):
            cols[name] = _int_col([getattr(r.breakdown, name) for r in rows])
        for name in ("device_id", "packets", "dormancy_requests",
                     "dormancy_granted", "dormancy_denied",
                     "delayed_sessions", "learn_iterations"):
            cols[name] = _int_col([getattr(r, name) for r in rows])
        policy_codes, policy_cats = _encode_labels(
            [r.policy_name for r in rows]
        )
        cohort_codes, cohort_cats = _encode_labels([r.cohort for r in rows])
        delays = _Ragged.from_lists([r.session_delays for r in rows])
        return cls(cols, policy_codes, policy_cats, cohort_codes,
                   cohort_cats, delays)

    @classmethod
    def from_columns(
        cls,
        cols: dict[str, Any],
        policy_codes,
        policy_cats: tuple[str, ...],
        cohort_codes,
        cohort_cats: tuple[str, ...],
        delays: _Ragged,
    ) -> "DeviceTable":
        """Build a table directly from columns (the merge fast path)."""
        return cls(
            {name: cols[name] for name in cls._FLOAT_COLS + cls._INT_COLS},
            policy_codes, policy_cats, cohort_codes, cohort_cats, delays,
        )

    # -- sequence protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def _row(self, i: int) -> "DeviceResult":
        from .cell import DeviceResult

        c = self._cols
        offsets = self._delays.offsets
        breakdown = EnergyBreakdown(
            data_j=float(c["data_j"][i]),
            active_tail_j=float(c["active_tail_j"][i]),
            high_idle_tail_j=float(c["high_idle_tail_j"][i]),
            idle_j=float(c["idle_j"][i]),
            switch_j=float(c["switch_j"][i]),
            data_time_s=float(c["data_time_s"][i]),
            active_time_s=float(c["active_time_s"][i]),
            high_idle_time_s=float(c["high_idle_time_s"][i]),
            idle_time_s=float(c["idle_time_s"][i]),
            promotions=int(c["promotions"][i]),
            demotions=int(c["demotions"][i]),
        )
        return DeviceResult(
            device_id=int(c["device_id"][i]),
            policy_name=self._policy_cats[self._policy_codes[i]],
            breakdown=breakdown,
            dormancy_requests=int(c["dormancy_requests"][i]),
            dormancy_granted=int(c["dormancy_granted"][i]),
            dormancy_denied=int(c["dormancy_denied"][i]),
            packets=int(c["packets"][i]),
            cohort=self._cohort_cats[self._cohort_codes[i]],
            session_delays=self._delays.row(
                int(offsets[i]), int(offsets[i + 1])
            ),
            delayed_sessions=int(c["delayed_sessions"][i]),
            total_session_delay_s=float(c["total_session_delay_s"][i]),
            learn_iterations=int(c["learn_iterations"][i]),
            learn_delay_first_s=float(c["learn_delay_first_s"][i]),
            learn_delay_final_s=float(c["learn_delay_final_s"][i]),
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(
                self._row(i) for i in range(*index.indices(self._n))
            )
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("device index out of range")
        return self._row(index)

    def __iter__(self) -> Iterator["DeviceResult"]:
        # Bulk iteration pulls each column to Python scalars once instead
        # of boxing per element per row.
        from .cell import DeviceResult

        c = {name: col.tolist() for name, col in self._cols.items()}
        policy = [self._policy_cats[code]
                  for code in self._policy_codes.tolist()]
        cohort = [self._cohort_cats[code]
                  for code in self._cohort_codes.tolist()]
        offsets = self._delays.offsets.tolist()
        for i in range(self._n):
            breakdown = EnergyBreakdown(
                data_j=c["data_j"][i],
                active_tail_j=c["active_tail_j"][i],
                high_idle_tail_j=c["high_idle_tail_j"][i],
                idle_j=c["idle_j"][i],
                switch_j=c["switch_j"][i],
                data_time_s=c["data_time_s"][i],
                active_time_s=c["active_time_s"][i],
                high_idle_time_s=c["high_idle_time_s"][i],
                idle_time_s=c["idle_time_s"][i],
                promotions=c["promotions"][i],
                demotions=c["demotions"][i],
            )
            yield DeviceResult(
                device_id=c["device_id"][i],
                policy_name=policy[i],
                breakdown=breakdown,
                dormancy_requests=c["dormancy_requests"][i],
                dormancy_granted=c["dormancy_granted"][i],
                dormancy_denied=c["dormancy_denied"][i],
                packets=c["packets"][i],
                cohort=cohort[i],
                session_delays=self._delays.row(offsets[i], offsets[i + 1]),
                delayed_sessions=c["delayed_sessions"][i],
                total_session_delay_s=c["total_session_delay_s"][i],
                learn_iterations=c["learn_iterations"][i],
                learn_delay_first_s=c["learn_delay_first_s"][i],
                learn_delay_final_s=c["learn_delay_final_s"][i],
            )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DeviceTable):
            if self._n != other._n:
                return False
            for name in self._FLOAT_COLS + self._INT_COLS:
                if not _col_equal(self._cols[name], other._cols[name]):
                    return False
            if not _decoded_equal(self._policy_codes, self._policy_cats,
                                  other._policy_codes, other._policy_cats):
                return False
            if not _decoded_equal(self._cohort_codes, self._cohort_cats,
                                  other._cohort_codes, other._cohort_cats):
                return False
            return self._delays == other._delays
        if isinstance(other, (tuple, list)):
            if len(other) != self._n:
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("DeviceTable", self._n))

    def __repr__(self) -> str:
        return f"DeviceTable(n={self._n})"

    # -- lookups ---------------------------------------------------------------------

    def by_id(self, device_id: int) -> "DeviceResult":
        """The row of one device id (O(1) after the index is built)."""
        if self._id_index is None:
            self._id_index = {
                did: i
                for i, did in enumerate(self._cols["device_id"].tolist())
            }
        try:
            return self._row(self._id_index[device_id])
        except KeyError:
            raise KeyError(f"no device with id {device_id}") from None

    # -- columnar aggregates ---------------------------------------------------------

    def _row_totals(self):
        """Per-device total energies, left-associated like ``total_j``."""
        if self._totals is None:
            c = self._cols
            if _np is not None:
                self._totals = (
                    c["data_j"] + c["active_tail_j"] + c["high_idle_tail_j"]
                    + c["idle_j"] + c["switch_j"]
                )
            else:
                self._totals = array("d", (
                    d + a + h + i + s
                    for d, a, h, i, s in zip(
                        c["data_j"], c["active_tail_j"],
                        c["high_idle_tail_j"], c["idle_j"], c["switch_j"],
                    )
                ))
        return self._totals

    def total_energy_j(self) -> float:
        """``sum(row.total_energy_j for row in table)``, pushed down."""
        return _fold_sum(self._row_totals())

    def int_total(self, column: str) -> int:
        """Exact integer column total (packets, dormancy counters, ...)."""
        return _int_sum(self._cols[column])

    def cohorts(self) -> tuple[str, ...]:
        """Non-empty cohort labels in first-device order."""
        return tuple(label for label in self._cohort_cats if label)

    def learning_summary(self) -> dict[str, float | int]:
        """Aggregate learning-curve summary over the cell's learning devices.

        ``learning_devices`` counts devices whose policy completed at least
        one learning iteration; the delay means are strict left folds over
        those devices in device order (divided once at the end), matching
        what a row loop would compute.
        """
        c = self._cols
        iters = c["learn_iterations"]
        if _np is not None:
            mask = iters > 0
            learners = int(mask.sum())  # repro-lint: allow[left-fold] reason=boolean mask count; exact integer arithmetic
            total_iters = int(iters[mask].sum()) if learners else 0  # repro-lint: allow[left-fold] reason=integer iteration count; exact arithmetic
            first = _fold_sum(c["learn_delay_first_s"][mask])
            final = _fold_sum(c["learn_delay_final_s"][mask])
        else:
            idx = [i for i, v in enumerate(iters) if v > 0]
            learners = len(idx)
            total_iters = sum(iters[i] for i in idx)  # repro-lint: allow[left-fold] reason=integer iteration count; exact arithmetic
            first = 0.0
            final = 0.0
            for i in idx:  # strict left fold in device order (DESIGN.md §5)
                first += c["learn_delay_first_s"][i]
                final += c["learn_delay_final_s"][i]
        return {
            "learning_devices": learners,
            "learn_iterations": total_iters,
            "mean_delay_first_s": first / learners if learners else 0.0,
            "mean_delay_final_s": final / learners if learners else 0.0,
        }

    def cohort_groups(self) -> dict[str, dict[str, float | int]]:
        """Per-cohort aggregate columns, keyed by label in first-seen order.

        Float sums are strict left folds over the group's rows in device
        order — exactly the per-member ``sum()`` the row-based breakdown
        performed.
        """
        c = self._cols
        groups: dict[str, dict[str, float | int]] = {}
        for code, label in enumerate(self._cohort_cats):
            if _np is not None:
                mask = self._cohort_codes == code
                count = int(mask.sum())  # repro-lint: allow[left-fold] reason=boolean mask count; exact integer arithmetic
                energy = _fold_sum(self._row_totals()[mask])
                delay = _fold_sum(c["total_session_delay_s"][mask])
                ints = {
                    name: int(c[name][mask].sum()) if count else 0  # repro-lint: allow[left-fold] reason=integer columns; exact arithmetic
                    for name in ("promotions", "demotions", "packets",
                                 "dormancy_requests", "dormancy_denied",
                                 "delayed_sessions", "learn_iterations")
                }
            else:
                idx = [i for i, v in enumerate(self._cohort_codes)
                       if v == code]
                count = len(idx)
                totals = self._row_totals()
                energy = 0.0
                delay = 0.0
                for i in idx:  # strict left fold in device order (DESIGN.md §5)
                    energy += totals[i]
                    delay += c["total_session_delay_s"][i]
                ints = {
                    name: sum(c[name][i] for i in idx)  # repro-lint: allow[left-fold] reason=integer columns; exact arithmetic
                    for name in ("promotions", "demotions", "packets",
                                 "dormancy_requests", "dormancy_denied",
                                 "delayed_sessions", "learn_iterations")
                }
            groups[label] = {
                "devices": count,
                "energy_j": energy,
                "total_session_delay_s": delay,
                **ints,
            }
        return groups


class ShardTable(Sequence["ShardDeviceState"]):
    """Struct-of-arrays form of one shard's exported open device states.

    The columnar twin of a ``tuple[ShardDeviceState, ...]``: built row-wise
    by the shard runners (scalar and vector), shipped across the process
    boundary as a handful of arrays, and consumed column-wise by
    ``merge_cell_shards``.
    """

    _FLOAT_COLS = (
        "data_j", "data_time_s", "active_time_s", "high_idle_time_s",
        "idle_time_s", "switch_j", "open_since", "last_activity",
        "total_session_delay_s", "learn_delay_first_s", "learn_delay_final_s",
    )
    _INT_COLS = (
        "device_id", "promotions", "timer_demotions", "fast_demotions",
        "packets", "dormancy_requests", "dormancy_granted",
        "dormancy_denied", "delayed_sessions", "learn_iterations",
    )

    __slots__ = (
        "_cols", "_open_state", "_closed", "_policy_codes", "_policy_cats",
        "_cohort_codes", "_cohort_cats", "_delays", "_n",
    )

    def __init__(self, cols, open_state, closed, policy_codes, policy_cats,
                 cohort_codes, cohort_cats, delays: _Ragged) -> None:
        self._cols = cols
        self._open_state = open_state
        self._closed = closed
        self._policy_codes = policy_codes
        self._policy_cats = policy_cats
        self._cohort_codes = cohort_codes
        self._cohort_cats = cohort_cats
        self._delays = delays
        self._n = len(cols["device_id"])

    @classmethod
    def from_rows(cls, rows: Sequence["ShardDeviceState"]) -> "ShardTable":
        cols: dict[str, Any] = {}
        for name in cls._FLOAT_COLS:
            cols[name] = _float_col([getattr(r, name) for r in rows])
        for name in cls._INT_COLS:
            cols[name] = _int_col([getattr(r, name) for r in rows])
        open_state = _byte_col([_STATE_CODE[r.open_state] for r in rows])
        closed = _byte_col([1 if r.closed else 0 for r in rows])
        policy_codes, policy_cats = _encode_labels(
            [r.policy_name for r in rows]
        )
        cohort_codes, cohort_cats = _encode_labels([r.cohort for r in rows])
        delays = _Ragged.from_lists([r.session_delays for r in rows])
        return cls(cols, open_state, closed, policy_codes, policy_cats,
                   cohort_codes, cohort_cats, delays)

    @classmethod
    def concat(cls, tables: Sequence["ShardTable"]) -> "ShardTable":
        """Concatenate shard partials in shard order (the merge layer)."""
        if not tables:
            raise ValueError("at least one shard table is required")
        cols = {
            name: _concat([t._cols[name] for t in tables])
            for name in cls._FLOAT_COLS + cls._INT_COLS
        }
        open_state = _concat([t._open_state for t in tables])
        closed = _concat([t._closed for t in tables])
        policy_codes, policy_cats = _merge_categories(
            tables, "_policy_codes", "_policy_cats"
        )
        cohort_codes, cohort_cats = _merge_categories(
            tables, "_cohort_codes", "_cohort_cats"
        )
        delays = _Ragged.concat([t._delays for t in tables])
        return cls(cols, open_state, closed, policy_codes, policy_cats,
                   cohort_codes, cohort_cats, delays)

    # -- sequence protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def _row(self, i: int) -> "ShardDeviceState":
        from .cell import ShardDeviceState

        c = self._cols
        offsets = self._delays.offsets
        return ShardDeviceState(
            device_id=int(c["device_id"][i]),
            policy_name=self._policy_cats[self._policy_codes[i]],
            data_j=float(c["data_j"][i]),
            data_time_s=float(c["data_time_s"][i]),
            active_time_s=float(c["active_time_s"][i]),
            high_idle_time_s=float(c["high_idle_time_s"][i]),
            idle_time_s=float(c["idle_time_s"][i]),
            switch_j=float(c["switch_j"][i]),
            promotions=int(c["promotions"][i]),
            timer_demotions=int(c["timer_demotions"][i]),
            fast_demotions=int(c["fast_demotions"][i]),
            open_state=_STATES[self._open_state[i]],
            open_since=float(c["open_since"][i]),
            last_activity=float(c["last_activity"][i]),
            packets=int(c["packets"][i]),
            dormancy_requests=int(c["dormancy_requests"][i]),
            dormancy_granted=int(c["dormancy_granted"][i]),
            dormancy_denied=int(c["dormancy_denied"][i]),
            session_delays=self._delays.row(
                int(offsets[i]), int(offsets[i + 1])
            ),
            delayed_sessions=int(c["delayed_sessions"][i]),
            total_session_delay_s=float(c["total_session_delay_s"][i]),
            cohort=self._cohort_cats[self._cohort_codes[i]],
            learn_iterations=int(c["learn_iterations"][i]),
            learn_delay_first_s=float(c["learn_delay_first_s"][i]),
            learn_delay_final_s=float(c["learn_delay_final_s"][i]),
            closed=bool(self._closed[i]),
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(
                self._row(i) for i in range(*index.indices(self._n))
            )
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError("shard device index out of range")
        return self._row(index)

    def __iter__(self) -> Iterator["ShardDeviceState"]:
        for i in range(self._n):
            yield self._row(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ShardTable):
            if self._n != other._n:
                return False
            for name in self._FLOAT_COLS + self._INT_COLS:
                if not _col_equal(self._cols[name], other._cols[name]):
                    return False
            if not _col_equal(self._open_state, other._open_state):
                return False
            if not _col_equal(self._closed, other._closed):
                return False
            if not _decoded_equal(self._policy_codes, self._policy_cats,
                                  other._policy_codes, other._policy_cats):
                return False
            if not _decoded_equal(self._cohort_codes, self._cohort_cats,
                                  other._cohort_codes, other._cohort_cats):
                return False
            return self._delays == other._delays
        if isinstance(other, (tuple, list)):
            if len(other) != self._n:
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ShardTable", self._n))

    def __repr__(self) -> str:
        return f"ShardTable(n={self._n})"

    # -- merge-layer column access -----------------------------------------------------

    def column(self, name: str):
        """One raw column (floats/ints by field name)."""
        return self._cols[name]

    @property
    def open_state_codes(self):
        """Open-state codes (indices into ``tuple(RadioState)``)."""
        return self._open_state

    @property
    def closed_flags(self):
        """Per-device handover-closed flags (0/1)."""
        return self._closed

    @property
    def policy_codes(self):
        return self._policy_codes

    @property
    def policy_cats(self) -> tuple[str, ...]:
        return self._policy_cats

    @property
    def cohort_codes(self):
        return self._cohort_codes

    @property
    def cohort_cats(self) -> tuple[str, ...]:
        return self._cohort_cats

    @property
    def delays(self) -> _Ragged:
        return self._delays

    def count_closed(self) -> int:
        """Devices whose timeline a handover already closed."""
        return _int_sum(self._closed)

    def count_ids_at_least(self, bound: int) -> int:
        """Devices whose id is ``>= bound`` (metro arrival counting)."""
        ids = self._cols["device_id"]
        if _np is not None:
            return int((ids >= bound).sum())  # repro-lint: allow[left-fold] reason=boolean mask count; exact integer arithmetic
        return sum(1 for v in ids if v >= bound)  # repro-lint: allow[left-fold] reason=integer count; exact arithmetic

    def state_code(self, state: RadioState) -> int:
        """The small-int code of ``state`` in the open-state column."""
        return _STATE_CODE[state]
