"""Network-controlled fast-dormancy policies (3GPP Release 8).

Under Release 8 the device merely *requests* channel release; the base
station decides.  The paper's simplified model assumes every request is
granted and motivates this module in its future work: an operator worried
about signalling storms may want to throttle or refuse requests.  Each
policy here sees the requesting device, the request time and a snapshot of
current cell load, and answers grant / deny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "CellLoadSnapshot",
    "DormancyDecision",
    "DormancyPolicy",
    "AcceptAllDormancy",
    "RejectAllDormancy",
    "RateLimitedDormancy",
    "LoadAwareDormancy",
    "partition_switch_budget",
]


@dataclass(frozen=True)
class CellLoadSnapshot:
    """What the base station knows when it evaluates a dormancy request."""

    time: float
    active_devices: int
    total_devices: int
    switches_last_minute: int

    def __post_init__(self) -> None:
        if self.total_devices < 0 or self.active_devices < 0:
            raise ValueError("device counts must be non-negative")
        if self.active_devices > self.total_devices:
            raise ValueError("active_devices cannot exceed total_devices")
        if self.switches_last_minute < 0:
            raise ValueError("switches_last_minute must be non-negative")

    @property
    def active_fraction(self) -> float:
        """Fraction of attached devices currently holding a channel."""
        if self.total_devices == 0:
            return 0.0
        return self.active_devices / self.total_devices


@dataclass(frozen=True)
class DormancyDecision:
    """Outcome of one fast-dormancy request."""

    granted: bool
    reason: str = ""


class DormancyPolicy:
    """Base class: how the base station answers fast-dormancy requests."""

    #: Name used in result tables.
    name: str = "dormancy_policy"

    #: Declare ``True`` only when :meth:`decide` grants unconditionally and
    #: keeps no per-request state.  The simulation kernel then skips
    #: building a :class:`CellLoadSnapshot` per request — decisions and
    #: counters are identical, the snapshot was just never looked at.  A
    #: subclass that overrides :meth:`decide` with any real logic must
    #: leave (or reset) this to ``False``.
    always_grants: bool = False

    def decide(
        self, device_id: int, request_time: float, load: CellLoadSnapshot
    ) -> DormancyDecision:
        """Grant or deny a device's request to release its channel."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-run state (default: nothing to clear)."""


class AcceptAllDormancy(DormancyPolicy):
    """The paper's assumption: every request is granted immediately."""

    name = "accept_all"
    always_grants = True

    def decide(
        self, device_id: int, request_time: float, load: CellLoadSnapshot
    ) -> DormancyDecision:
        del device_id, request_time, load
        return DormancyDecision(granted=True, reason="always accept")


class RejectAllDormancy(DormancyPolicy):
    """The pre-Release-7 world: devices cannot release the channel themselves."""

    name = "reject_all"

    def decide(
        self, device_id: int, request_time: float, load: CellLoadSnapshot
    ) -> DormancyDecision:
        del device_id, request_time, load
        return DormancyDecision(granted=False, reason="fast dormancy disabled")


class RateLimitedDormancy(DormancyPolicy):
    """Grant requests unless a device asks too often.

    Operators deploying network-controlled fast dormancy mainly fear
    signalling storms from chatty devices; this policy denies a request if
    the same device was already granted one within ``min_interval_s``.
    """

    name = "rate_limited"

    def __init__(self, min_interval_s: float = 10.0) -> None:
        if min_interval_s <= 0:
            raise ValueError(f"min_interval_s must be positive, got {min_interval_s}")
        self._min_interval_s = min_interval_s
        self._last_grant: dict[int, float] = {}

    @property
    def min_interval_s(self) -> float:
        """Minimum spacing between granted requests from one device."""
        return self._min_interval_s

    def reset(self) -> None:
        self._last_grant.clear()

    def decide(
        self, device_id: int, request_time: float, load: CellLoadSnapshot
    ) -> DormancyDecision:
        del load
        last = self._last_grant.get(device_id)
        if last is not None and request_time - last < self._min_interval_s:
            return DormancyDecision(
                granted=False,
                reason=f"device requested again within {self._min_interval_s}s",
            )
        self._last_grant[device_id] = request_time
        return DormancyDecision(granted=True, reason="within rate limit")


class LoadAwareDormancy(DormancyPolicy):
    """Grant requests only while cell-wide signalling stays below a budget.

    The base station tracks switches over the last minute (provided in the
    load snapshot) and starts refusing dormancy requests once the rate
    exceeds ``max_switches_per_minute`` — trading device energy for network
    stability exactly the way the paper's future-work discussion anticipates.
    """

    name = "load_aware"

    def __init__(self, max_switches_per_minute: int = 120) -> None:
        if max_switches_per_minute <= 0:
            raise ValueError(
                "max_switches_per_minute must be positive, "
                f"got {max_switches_per_minute}"
            )
        self._max_switches_per_minute = max_switches_per_minute

    @property
    def max_switches_per_minute(self) -> int:
        """Cell-wide switch budget per minute above which requests are denied."""
        return self._max_switches_per_minute

    def decide(
        self, device_id: int, request_time: float, load: CellLoadSnapshot
    ) -> DormancyDecision:
        del device_id, request_time
        if load.switches_last_minute >= self._max_switches_per_minute:
            return DormancyDecision(
                granted=False,
                reason=(
                    f"cell at {load.switches_last_minute} switches/min, "
                    f"budget {self._max_switches_per_minute}"
                ),
            )
        return DormancyDecision(granted=True, reason="cell below switch budget")


def partition_switch_budget(
    budget: int, shard_sizes: Sequence[int]
) -> list[int]:
    """Split a cell-wide switches-per-minute budget across device shards.

    Sharded cell execution runs each shard's :class:`LoadAwareDormancy`
    against that shard's *own* load, so the cell-wide budget has to be
    divided up front.  Shares are proportional to shard device counts
    (largest-remainder apportionment; remainder ties go to earlier
    shards), which makes the partition deterministic and exact for equal
    shards.  Every shard receives at least 1 — a load-aware policy needs a
    positive budget — so when ``budget < len(shard_sizes)`` the per-shard
    budgets sum to slightly more than ``budget``.

    This is the documented approximation of sharded ``load_aware`` cells:
    each shard enforces its share against its own switch window, which can
    deny a request a cell-wide budget would have granted (a busy shard
    exhausts its share while another idles) and vice versa.  The
    single-process run remains the exact reference; see
    ``docs/DESIGN.md``.
    """
    if budget < 1:
        raise ValueError(f"budget must be positive, got {budget}")
    if not shard_sizes:
        raise ValueError("at least one shard is required")
    if any(size < 1 for size in shard_sizes):
        raise ValueError(f"shard sizes must be positive, got {list(shard_sizes)}")
    total = sum(shard_sizes)  # repro-lint: allow[left-fold] reason=integer shard sizes; exact order-independent arithmetic
    shares = [budget * size // total for size in shard_sizes]
    by_remainder = sorted(
        range(len(shard_sizes)),
        key=lambda index: (-(budget * shard_sizes[index] % total), index),
    )
    for index in by_remainder[: budget - sum(shares)]:  # repro-lint: allow[left-fold] reason=integer largest-remainder shares; exact arithmetic
        shares[index] += 1
    return [max(1, share) for share in shares]
