"""Base-station-side model of fast dormancy (the paper's future work, §8).

The paper evaluates everything from the device's side and explicitly defers
"studying the effects of triggering fast dormancy on the base station side
… considering issues such as handling multiple phones triggering the
feature" to future work.  This subpackage provides that study's substrate:

* :mod:`repro.basestation.policies` — network-side policies deciding whether
  to grant a device's fast-dormancy request (3GPP Release 8 leaves this to
  the operator; the paper assumes "always accept");
* :mod:`repro.basestation.cell` — a multi-device cell simulation that runs
  each device's trace through its own RRC machine and control policy while
  the base station arbitrates dormancy requests and tracks aggregate
  signalling load and channel occupancy.
"""

from .cell import (
    CellResult,
    CellShard,
    CellSimulator,
    CohortBreakdown,
    DeviceResult,
    DeviceSpec,
    merge_cell_shards,
)
from .table import DeviceTable, FloatArray, ShardTable
from .policies import (
    AcceptAllDormancy,
    DormancyDecision,
    DormancyPolicy,
    LoadAwareDormancy,
    RateLimitedDormancy,
    RejectAllDormancy,
    partition_switch_budget,
)

__all__ = [
    "AcceptAllDormancy",
    "CellResult",
    "CellShard",
    "CellSimulator",
    "CohortBreakdown",
    "DeviceResult",
    "DeviceSpec",
    "DeviceTable",
    "DormancyDecision",
    "DormancyPolicy",
    "FloatArray",
    "LoadAwareDormancy",
    "RateLimitedDormancy",
    "RejectAllDormancy",
    "ShardTable",
    "merge_cell_shards",
    "partition_switch_budget",
]
