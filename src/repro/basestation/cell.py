"""Multi-device cell simulation with network-controlled fast dormancy.

This is the substrate for the paper's future-work question (§8): what
happens at the base station when *many* phones run MakeIdle and trigger
fast dormancy?  The simulator replays one packet trace per device, each
against its own RRC state machine and device-side policy, while a single
:class:`~repro.basestation.policies.DormancyPolicy` arbitrates every
fast-dormancy request using a live snapshot of cell load.

Scope and simplifications
-------------------------

* Devices use the MakeIdle side of their policy (``dormancy_wait``); the
  MakeActive buffering path is not modelled here — batching is a purely
  device-local decision that the base station never sees, so it can be
  studied with the single-device :class:`~repro.sim.TraceSimulator`.
* Channel capacity is not modelled; the cell tracks occupancy and
  signalling load but never blocks a promotion.  This matches the paper's
  scope (energy and signalling, not throughput).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.policy import RadioPolicy
from ..energy.accounting import EnergyAccountant, EnergyBreakdown
from ..rrc.profiles import CarrierProfile
from ..rrc.signaling import SignalingLoad, signaling_load
from ..rrc.state_machine import RrcStateMachine
from ..rrc.states import RadioState
from ..traces.packet import PacketTrace
from .policies import (
    AcceptAllDormancy,
    CellLoadSnapshot,
    DormancyPolicy,
)

__all__ = ["DeviceSpec", "DeviceResult", "CellResult", "CellSimulator"]

#: Length of the sliding window used for the cell's switches-per-minute load.
_LOAD_WINDOW_S = 60.0


@dataclass(frozen=True)
class DeviceSpec:
    """One device attached to the cell: its identity, trace and policy."""

    device_id: int
    trace: PacketTrace
    policy: RadioPolicy

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError(f"device_id must be non-negative, got {self.device_id}")


@dataclass(frozen=True)
class DeviceResult:
    """Per-device outcome of a cell simulation."""

    device_id: int
    policy_name: str
    breakdown: EnergyBreakdown
    dormancy_requests: int
    dormancy_granted: int
    dormancy_denied: int

    @property
    def total_energy_j(self) -> float:
        """Total device energy over the run, joules."""
        return self.breakdown.total_j

    @property
    def denial_rate(self) -> float:
        """Fraction of this device's dormancy requests that were denied."""
        if self.dormancy_requests == 0:
            return 0.0
        return self.dormancy_denied / self.dormancy_requests


@dataclass(frozen=True)
class CellResult:
    """Aggregate outcome of a cell simulation."""

    dormancy_policy_name: str
    devices: tuple[DeviceResult, ...]
    signaling: SignalingLoad
    duration_s: float
    peak_active_devices: int
    switch_times: tuple[float, ...] = field(default=(), repr=False)

    @property
    def total_energy_j(self) -> float:
        """Energy summed over every device, joules."""
        return sum(d.total_energy_j for d in self.devices)

    @property
    def total_switches(self) -> int:
        """State switches summed over every device."""
        return self.signaling.switches

    @property
    def dormancy_requests(self) -> int:
        """Fast-dormancy requests summed over every device."""
        return sum(d.dormancy_requests for d in self.devices)

    @property
    def dormancy_denied(self) -> int:
        """Denied fast-dormancy requests summed over every device."""
        return sum(d.dormancy_denied for d in self.devices)

    @property
    def denial_rate(self) -> float:
        """Cell-wide fraction of dormancy requests that were denied."""
        requests = self.dormancy_requests
        return self.dormancy_denied / requests if requests else 0.0

    @property
    def peak_switches_per_minute(self) -> int:
        """Largest number of switches observed in any 60-second window."""
        times = sorted(self.switch_times)
        best = 0
        start = 0
        for end, time in enumerate(times):
            while time - times[start] > _LOAD_WINDOW_S:
                start += 1
            best = max(best, end - start + 1)
        return best

    def device(self, device_id: int) -> DeviceResult:
        """Return the result for one device id."""
        for result in self.devices:
            if result.device_id == device_id:
                return result
        raise KeyError(f"no device with id {device_id}")


class CellSimulator:
    """Replays several devices' traces against one base station.

    Parameters
    ----------
    profile:
        Carrier profile shared by every device in the cell.
    dormancy_policy:
        Base-station policy answering fast-dormancy requests; defaults to
        the paper's always-accept assumption.
    """

    def __init__(
        self,
        profile: CarrierProfile,
        dormancy_policy: DormancyPolicy | None = None,
    ) -> None:
        self._profile = profile
        self._dormancy_policy = (
            dormancy_policy if dormancy_policy is not None else AcceptAllDormancy()
        )
        self._accountant = EnergyAccountant(profile)

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile shared by all devices."""
        return self._profile

    @property
    def dormancy_policy(self) -> DormancyPolicy:
        """The base-station dormancy policy."""
        return self._dormancy_policy

    def run(self, devices: Sequence[DeviceSpec]) -> CellResult:
        """Simulate all devices and return per-device and aggregate results."""
        if not devices:
            raise ValueError("at least one device is required")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise ValueError("device ids must be unique")

        self._dormancy_policy.reset()
        machines: dict[int, RrcStateMachine] = {}
        pending: dict[int, float | None] = {}
        requests: dict[int, int] = {}
        granted: dict[int, int] = {}
        denied: dict[int, int] = {}
        switch_times: list[float] = []
        peak_active = 0

        for spec in devices:
            spec.policy.prepare(spec.trace, self._profile)
            spec.policy.reset()
            machines[spec.device_id] = RrcStateMachine(self._profile, start_time=0.0)
            pending[spec.device_id] = None
            requests[spec.device_id] = 0
            granted[spec.device_id] = 0
            denied[spec.device_id] = 0

        events = sorted(
            (
                (packet.timestamp, spec.device_id, packet)
                for spec in devices
                for packet in spec.trace
            ),
            key=lambda item: (item[0], item[1]),
        )
        specs: Mapping[int, DeviceSpec] = {d.device_id: d for d in devices}

        def snapshot(time: float) -> CellLoadSnapshot:
            active = sum(
                1
                for machine in machines.values()
                if machine.state is not RadioState.IDLE
            )
            recent = sum(1 for t in switch_times if time - t <= _LOAD_WINDOW_S)
            return CellLoadSnapshot(
                time=time,
                active_devices=active,
                total_devices=len(machines),
                switches_last_minute=recent,
            )

        def handle_pending(device_id: int, now: float, cancel: bool) -> None:
            """Fire or cancel the device's scheduled dormancy request."""
            scheduled = pending[device_id]
            if scheduled is None:
                return
            pending[device_id] = None
            if cancel or scheduled >= now:
                return
            requests[device_id] += 1
            decision = self._dormancy_policy.decide(
                device_id, scheduled, snapshot(scheduled)
            )
            if decision.granted:
                granted[device_id] += 1
                before = len(machines[device_id].switches)
                machines[device_id].request_fast_dormancy(scheduled)
                if len(machines[device_id].switches) > before:
                    switch_times.append(scheduled)
            else:
                denied[device_id] += 1

        for now, device_id, packet in events:
            machine = machines[device_id]
            scheduled = pending[device_id]
            # A packet arriving before the scheduled wait elapses cancels it.
            handle_pending(device_id, now, cancel=scheduled is not None and scheduled >= now)

            was_idle = machine.state_at(now) is RadioState.IDLE
            machine.notify_activity(now)
            if was_idle:
                switch_times.append(now)
            specs[device_id].policy.observe_packet(now, packet)
            wait = specs[device_id].policy.dormancy_wait(now)
            pending[device_id] = now + wait if wait is not None else None
            peak_active = max(peak_active, snapshot(now).active_devices)

        # Drain pending requests after the last packet of each device.
        end_time = max((t for t, _, _ in events), default=0.0)
        end_time += self._profile.total_inactivity_timeout + 1.0
        for spec in devices:
            handle_pending(spec.device_id, end_time, cancel=False)
            machines[spec.device_id].finish(end_time)

        device_results = []
        for spec in devices:
            machine = machines[spec.device_id]
            breakdown = self._accountant.account(
                spec.trace, machine.intervals, machine.switches
            )
            device_results.append(
                DeviceResult(
                    device_id=spec.device_id,
                    policy_name=spec.policy.name,
                    breakdown=breakdown,
                    dormancy_requests=requests[spec.device_id],
                    dormancy_granted=granted[spec.device_id],
                    dormancy_denied=denied[spec.device_id],
                )
            )

        all_switches = [
            event
            for machine in machines.values()
            for event in machine.switches
        ]
        load = signaling_load(
            all_switches,
            duration_s=end_time,
            technology=self._profile.technology,
        )
        return CellResult(
            dormancy_policy_name=self._dormancy_policy.name,
            devices=tuple(device_results),
            signaling=load,
            duration_s=end_time,
            peak_active_devices=peak_active,
            switch_times=tuple(sorted(switch_times)),
        )
