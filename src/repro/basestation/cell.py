"""Multi-device cell simulation with network-controlled fast dormancy.

This is the substrate for the paper's future-work question (§8): what
happens at the base station when *many* phones run MakeIdle and trigger
fast dormancy?  The simulator replays one packet trace per device, each
against its own RRC state machine and device-side policy, while a single
:class:`~repro.basestation.policies.DormancyPolicy` arbitrates every
fast-dormancy request using a live snapshot of cell load.

Since the kernel refactor, :class:`CellSimulator` is a thin façade over
:class:`~repro.sim.engine.SimulationEngine` — the same heap-based event
kernel behind the single-device :class:`~repro.sim.TraceSimulator` — so
devices get the *full* device-side semantics, including the MakeActive
promotion-delaying path that the pre-kernel cell simulator did not model:
a device running a combined MakeIdle+MakeActive policy buffers and batches
sessions exactly as it does in a single-UE run, while the base station
still arbitrates its fast-dormancy requests.

Scope and simplifications
-------------------------

* Channel capacity is not modelled; the cell tracks occupancy and
  signalling load but never blocks a promotion.  This matches the paper's
  scope (energy and signalling, not throughput).
* Device traces may be materialised :class:`~repro.traces.packet.PacketTrace`
  objects *or* lazy packet iterables (see :mod:`repro.traces.streaming`).
  With lazy sources the kernel holds one pending packet per device and the
  per-device energy accounting folds incrementally, so memory is bounded by
  the number of attached devices — 10k+-device cells are practical.
  Offline policies that inspect the whole trace in ``prepare`` (the Oracle,
  trace-trained baselines) need materialised traces; online policies work
  with either.

Sharding
--------

A cell can be partitioned into disjoint device shards, each run by its own
simulator (typically in its own worker process) via :meth:`run_shard`, and
merged back into one :class:`CellResult` with :func:`merge_cell_shards`.
For shard-independent dormancy policies the merged per-device records are
byte-identical to :meth:`CellSimulator.run` at any shard count — ``run``
itself is implemented as the one-shard case of the same protocol.  See
``docs/DESIGN.md`` §2.1 for the merge contract and its two documented
approximations (multi-shard ``peak_active_devices``, ``load_aware`` budget
partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence, Union

from ..core.policy import RadioPolicy
from ..energy.accounting import EnergyBreakdown
from ..metrics.switches import peak_per_window
from ..rrc.profiles import CarrierProfile
from ..rrc.signaling import SignalingLoad, signaling_costs_for
from ..rrc.state_machine import SwitchKind
from ..rrc.states import RadioState
from ..sim.engine import (
    CellLoad,
    DormancyStation,
    LoadSample,
    SimulationEngine,
    UeContext,
    resolve_end_time,
)
from ..sim.results import SessionDelay
from ..traces.packet import Packet, PacketTrace
from .policies import (
    AcceptAllDormancy,
    CellLoadSnapshot,
    DormancyPolicy,
)
from .table import (
    DeviceTable,
    FloatArray,
    ShardTable,
    _float_col,
    _int_col,
    _np,
    derive_tail_columns,
)

__all__ = [
    "CellResult",
    "CellShard",
    "CellSimulator",
    "CohortBreakdown",
    "DeviceResult",
    "DeviceSpec",
    "DeviceTable",
    "FloatArray",
    "ShardDeviceState",
    "ShardTable",
    "merge_cell_shards",
]

#: Length of the sliding window used for the cell's switches-per-minute load.
_LOAD_WINDOW_S = 60.0

#: A device workload: a materialised trace or a lazy time-ordered source.
TraceSource = Union[PacketTrace, Iterable[Packet]]


@dataclass(frozen=True)
class DeviceSpec:
    """One device attached to the cell: its identity, trace and policy.

    ``trace`` may be a :class:`~repro.traces.packet.PacketTrace` or any
    iterable of packets in non-decreasing timestamp order (a generator from
    :mod:`repro.traces.streaming`); lazy sources keep cell memory bounded by
    the device count.

    ``attach_at``/``detach_at`` bound a *metro visit*: the device's
    timeline starts at ``attach_at`` (Idle until its first packet) and — if
    ``detach_at`` is set — is closed there by a kernel handover event.  The
    trace must fall inside ``[attach_at, detach_at)``.  The defaults
    (attach at 0, never detach) are the plain single-cell device.
    """

    device_id: int
    trace: TraceSource
    policy: RadioPolicy
    #: Scenario cohort label ("" for homogeneous populations); carried
    #: through to :class:`DeviceResult` so cell results can report
    #: per-cohort breakdowns.
    cohort: str = ""
    #: When this device's timeline starts (a mid-run metro attach).
    attach_at: float = 0.0
    #: When a handover closes this device's timeline (``None``: stays
    #: attached until the cell's globally resolved end time).
    detach_at: float | None = None

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError(f"device_id must be non-negative, got {self.device_id}")
        if self.attach_at < 0:
            raise ValueError(f"attach_at must be non-negative, got {self.attach_at}")
        if self.detach_at is not None and self.detach_at <= self.attach_at:
            raise ValueError(
                f"detach_at ({self.detach_at}) must be after "
                f"attach_at ({self.attach_at})"
            )


def _check_policy_isolation(devices: Sequence[DeviceSpec]) -> None:
    """Reject a *stateful* policy instance shared by several devices.

    A policy that learns from the packet stream (overrides
    ``observe_packet`` or ``on_release`` — the online learners and
    MakeIdle's window) carries per-UE state; sharing one instance across
    devices leaks expert weights and inter-arrival history between UEs and
    breaks shard byte-identity.  Stateless decision policies (fixed timers,
    the status quo) may be shared freely.
    """
    owners: dict[int, int] = {}
    for spec in devices:
        cls = type(spec.policy)
        if (
            cls.observe_packet is RadioPolicy.observe_packet
            and cls.on_release is RadioPolicy.on_release
        ):
            continue
        owner = owners.setdefault(id(spec.policy), spec.device_id)
        if owner != spec.device_id:
            raise ValueError(
                f"devices {owner} and {spec.device_id} share one "
                f"{cls.__name__} instance; stateful policies must be "
                "built fresh per device (use PolicySpec.build() or "
                "repro.core.controller.build_scheme per UE)"
            )


@dataclass(frozen=True)
class DeviceResult:
    """Per-device outcome of a cell simulation."""

    device_id: int
    policy_name: str
    breakdown: EnergyBreakdown
    dormancy_requests: int
    dormancy_granted: int
    dormancy_denied: int
    packets: int = 0
    #: Scenario cohort label ("" for homogeneous populations).
    cohort: str = ""
    #: Sample of this device's delayed-session records (capped per UE so
    #: long MakeActive runs stay bounded); totals are in the counters below.
    session_delays: tuple[SessionDelay, ...] = field(default=(), repr=False)
    delayed_sessions: int = 0
    total_session_delay_s: float = 0.0
    #: Learning-curve summary of this device's online learner (MakeActive
    #: Learn-α): completed learning iterations and the delay used at the
    #: first and last of them.  All zero for non-learning policies.
    learn_iterations: int = 0
    learn_delay_first_s: float = 0.0
    learn_delay_final_s: float = 0.0

    @property
    def total_energy_j(self) -> float:
        """Total device energy over the run, joules."""
        return self.breakdown.total_j

    @property
    def denial_rate(self) -> float:
        """Fraction of this device's dormancy requests that were denied."""
        if self.dormancy_requests == 0:
            return 0.0
        return self.dormancy_denied / self.dormancy_requests

    @property
    def mean_session_delay_s(self) -> float:
        """Mean MakeActive delay over this device's *delayed* sessions."""
        if self.delayed_sessions == 0:
            return 0.0
        return self.total_session_delay_s / self.delayed_sessions


@dataclass(frozen=True)
class CohortBreakdown:
    """Aggregate outcome of one scenario cohort within a cell result."""

    cohort: str
    devices: int
    energy_j: float
    switches: int
    promotions: int
    demotions: int
    packets: int
    dormancy_requests: int
    dormancy_denied: int
    delayed_sessions: int
    total_session_delay_s: float
    #: Learning iterations completed by this cohort's online learners
    #: (0 for cohorts running non-learning policies).
    learn_iterations: int = 0

    @property
    def denial_rate(self) -> float:
        """Fraction of this cohort's dormancy requests that were denied."""
        if self.dormancy_requests == 0:
            return 0.0
        return self.dormancy_denied / self.dormancy_requests

    @property
    def energy_per_device_j(self) -> float:
        """Mean per-device energy of the cohort, joules."""
        return self.energy_j / self.devices if self.devices else 0.0

    def as_dict(self) -> dict[str, float | int | str]:
        """Plain-dict form for records/JSON export."""
        return {
            "cohort": self.cohort,
            "devices": self.devices,
            "energy_j": self.energy_j,
            "energy_per_device_j": self.energy_per_device_j,
            "switches": self.switches,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "packets": self.packets,
            "dormancy_requests": self.dormancy_requests,
            "dormancy_denied": self.dormancy_denied,
            "denial_rate": self.denial_rate,
            "delayed_sessions": self.delayed_sessions,
            "total_session_delay_s": self.total_session_delay_s,
            "learn_iterations": self.learn_iterations,
        }


@dataclass(frozen=True)
class CellResult:
    """Aggregate outcome of a cell simulation.

    ``devices`` is stored columnar (:class:`~repro.basestation.table.DeviceTable`,
    one numpy column per field); indexing and iteration materialise the
    familiar :class:`DeviceResult` rows on demand, and a plain sequence of
    rows passed to the constructor is normalised into a table.  The
    cell-wide aggregates push down to column operations that replicate the
    row-based left-fold sums bit for bit (see ``docs/DESIGN.md`` §5).
    """

    dormancy_policy_name: str
    devices: DeviceTable
    signaling: SignalingLoad
    duration_s: float
    peak_active_devices: int
    switch_times: FloatArray = field(default=(), repr=False)
    load_samples: tuple[LoadSample, ...] = field(default=(), repr=False)
    #: How many devices ran on the vectorized kernel backend (0 for a
    #: scalar run; the remainder took the automatic per-UE scalar
    #: fallback — see :mod:`repro.sim.vector_engine`).  Diagnostic only
    #: and excluded from equality: both backends produce byte-identical
    #: results, so a vector result *equals* its scalar twin.
    vector_devices: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.devices, DeviceTable):
            object.__setattr__(
                self, "devices", DeviceTable.from_rows(tuple(self.devices))
            )
        if not isinstance(self.switch_times, FloatArray):
            object.__setattr__(
                self, "switch_times", FloatArray(self.switch_times)
            )

    @cached_property
    def total_energy_j(self) -> float:
        """Energy summed over every device, joules (columnar left fold)."""
        return self.devices.total_energy_j()

    @property
    def total_switches(self) -> int:
        """State switches summed over every device."""
        return self.signaling.switches

    @property
    def total_packets(self) -> int:
        """Packets transferred summed over every device."""
        return self.devices.int_total("packets")

    @property
    def dormancy_requests(self) -> int:
        """Fast-dormancy requests summed over every device."""
        return self.devices.int_total("dormancy_requests")

    @property
    def dormancy_denied(self) -> int:
        """Denied fast-dormancy requests summed over every device."""
        return self.devices.int_total("dormancy_denied")

    @property
    def denial_rate(self) -> float:
        """Cell-wide fraction of dormancy requests that were denied."""
        requests = self.dormancy_requests
        return self.dormancy_denied / requests if requests else 0.0

    @cached_property
    def peak_switches_per_minute(self) -> int:
        """Largest number of switches observed in any 60-second window.

        Computed (and the underlying timestamps sorted) once on first
        access; repeated reads are O(1).  The two-pointer sweep itself
        stays scalar so its float comparisons match the pinned golden
        values exactly.
        """
        return peak_per_window(self.switch_times.sorted().tolist(),
                               _LOAD_WINDOW_S, presorted=True)

    def device(self, device_id: int) -> DeviceResult:
        """Return the result for one device id (O(1) after the first call)."""
        return self.devices.by_id(device_id)

    def cohorts(self) -> tuple[str, ...]:
        """Cohort labels present in this cell, in first-device order.

        Empty for homogeneous (non-scenario) populations, whose devices
        all carry the default ``""`` label.
        """
        return self.devices.cohorts()

    def cohort_breakdown(self) -> dict[str, CohortBreakdown]:
        """Per-cohort aggregates, keyed by cohort label in first-device order.

        Devices without a cohort label (homogeneous populations) are
        grouped under ``""``; for scenario populations every device is
        labelled, so the cohort totals partition the cell totals exactly
        (a conservation law asserted by the property tests).  Group sums
        are columnar but fold left over the group's rows in device order,
        matching the row-based sums bit for bit.
        """
        breakdown: dict[str, CohortBreakdown] = {}
        for cohort, group in self.devices.cohort_groups().items():
            breakdown[cohort] = CohortBreakdown(
                cohort=cohort,
                devices=int(group["devices"]),
                energy_j=float(group["energy_j"]),
                switches=int(group["promotions"]) + int(group["demotions"]),
                promotions=int(group["promotions"]),
                demotions=int(group["demotions"]),
                packets=int(group["packets"]),
                dormancy_requests=int(group["dormancy_requests"]),
                dormancy_denied=int(group["dormancy_denied"]),
                delayed_sessions=int(group["delayed_sessions"]),
                total_session_delay_s=float(group["total_session_delay_s"]),
                learn_iterations=int(group["learn_iterations"]),
            )
        return breakdown

    def learning_summary(self) -> dict[str, float | int]:
        """Cell-wide learning-curve summary (see ``DeviceTable.learning_summary``)."""
        return self.devices.learning_summary()


@dataclass(frozen=True)
class ShardDeviceState:
    """One device's folded kernel state, exported before the timeline closes.

    Everything needed to finish the device's accounting at an end time the
    shard itself cannot know (the *global* close time of the whole cell):
    the incremental energy totals, the open state segment with its pending
    timer demotions (pinned down by ``open_state``, ``open_since`` and
    ``last_activity``), and the plain counters.  :func:`_close_device`
    replays :meth:`~repro.rrc.state_machine.RrcStateMachine.finish` plus
    the machine's fold-at-transition accounting
    (:meth:`~repro.rrc.state_machine.RrcStateMachine.folded_state_totals`)
    over these fields float op for float op — which is what makes sharded
    per-device results byte-identical to a single-process run.
    """

    device_id: int
    policy_name: str
    data_j: float
    data_time_s: float
    active_time_s: float
    high_idle_time_s: float
    idle_time_s: float
    switch_j: float
    promotions: int
    timer_demotions: int
    fast_demotions: int
    open_state: RadioState
    open_since: float
    last_activity: float
    packets: int
    dormancy_requests: int
    dormancy_granted: int
    dormancy_denied: int
    session_delays: tuple[SessionDelay, ...]
    delayed_sessions: int
    total_session_delay_s: float
    cohort: str = ""
    #: Online-learning summary captured at shard export (the learner lives
    #: and dies inside its shard, so these are already final).
    learn_iterations: int = 0
    learn_delay_first_s: float = 0.0
    learn_delay_final_s: float = 0.0
    #: True when a handover already closed this device's timeline at its
    #: departure instant: the exported state-time totals are final and the
    #: merge must *not* extend them to the global end time.
    closed: bool = False


@dataclass(frozen=True)
class CellShard:
    """The picklable partial result of one shard's kernel run.

    Produced by :meth:`CellSimulator.run_shard`, consumed by
    :func:`merge_cell_shards`.  Timelines are still open: ``last_emitted``
    and ``max_now`` are this shard's contribution to the global end-time
    resolution, and every device carries its open segment.
    """

    dormancy_policy_name: str
    profile: CarrierProfile
    trailing_time: float
    devices: ShardTable
    last_emitted: float | None
    max_now: float
    load: CellLoad
    load_samples: tuple[LoadSample, ...]
    sample_interval_s: float | None
    #: Devices of this shard that ran on the vectorized kernel backend
    #: (0 for scalar shards; vector and scalar shards merge freely).
    vector_devices: int = 0

    def __post_init__(self) -> None:
        # Normalise a row tuple (the shard runners build rows; so may
        # tests) into the columnar partial the merge layer consumes.
        if not isinstance(self.devices, ShardTable):
            object.__setattr__(
                self, "devices", ShardTable.from_rows(tuple(self.devices))
            )
        # Compact the kernel's boxed switch-time list into one float
        # column: the shard outlives the run (often crossing a process
        # boundary) and the merge only reads the finished timeline, so
        # holding millions of boxed floats per shard would dominate RSS
        # at population scale.
        load = self.load
        if _np is not None and isinstance(load.switch_times, list):
            load.switch_times = _np.asarray(load.switch_times,
                                            dtype=_np.float64)
            load._recent = []
            load._recent_start = 0


class _NetworkStation(DormancyStation):
    """Adapts a :class:`DormancyPolicy` to the kernel's station hook."""

    def __init__(self, policy: DormancyPolicy) -> None:
        self._policy = policy
        # Propagate the policy's unconditional-grant declaration so the
        # kernel can skip per-request snapshots — but only when decide()
        # really is the accept-all implementation, so a subclass that
        # overrides decide() while inheriting the flag is still consulted.
        self.always_grants = (
            bool(getattr(policy, "always_grants", False))
            and type(policy).decide is AcceptAllDormancy.decide
        )

    def decide(self, ue_id: int, time: float, load: CellLoad) -> bool:
        snapshot = CellLoadSnapshot(
            time=time,
            active_devices=load.active_devices,
            total_devices=load.total_devices,
            switches_last_minute=load.switches_within_window(time),
        )
        return self._policy.decide(ue_id, time, snapshot).granted


class CellSimulator:
    """Replays several devices' traces against one base station.

    Parameters
    ----------
    profile:
        Carrier profile shared by every device in the cell.
    dormancy_policy:
        Base-station policy answering fast-dormancy requests; defaults to
        the paper's always-accept assumption.
    load_sample_interval_s:
        When set, the kernel records a cell-load sample every this many
        seconds (``CellResult.load_samples``).
    engine:
        Kernel backend: ``"scalar"`` (the event-driven reference) or
        ``"vector"`` (numpy batch processing, byte-identical results —
        see :mod:`repro.sim.vector_engine`).  The vector backend falls
        back to the scalar kernel automatically — per UE for policies
        with per-packet hooks, for the whole shard when the base-station
        policy does not unconditionally grant dormancy or numpy is
        unavailable.
    """

    def __init__(
        self,
        profile: CarrierProfile,
        dormancy_policy: DormancyPolicy | None = None,
        load_sample_interval_s: float | None = None,
        engine: str = "scalar",
    ) -> None:
        if engine not in ("scalar", "vector"):
            raise ValueError(
                f"engine must be 'scalar' or 'vector', got {engine!r}"
            )
        self._engine = SimulationEngine(profile)
        self._dormancy_policy = (
            dormancy_policy if dormancy_policy is not None else AcceptAllDormancy()
        )
        self._sample_interval = load_sample_interval_s
        self._backend = engine

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile shared by all devices."""
        return self._engine.profile

    @property
    def dormancy_policy(self) -> DormancyPolicy:
        """The base-station dormancy policy."""
        return self._dormancy_policy

    @property
    def engine(self) -> SimulationEngine:
        """The shared event kernel this façade drives."""
        return self._engine

    @property
    def backend(self) -> str:
        """The selected kernel backend (``"scalar"`` or ``"vector"``)."""
        return self._backend

    @property
    def sample_interval_s(self) -> float | None:
        """The cell-load sampling cadence (``None``: sampling off)."""
        return self._sample_interval

    def run(self, devices: Sequence[DeviceSpec]) -> CellResult:
        """Simulate all devices and return per-device and aggregate results.

        Implemented as the one-shard case of the shard protocol
        (:meth:`run_shard` + :func:`merge_cell_shards`), whose merge
        reproduces the pre-shard finish float op for float op — so this
        remains the exact reference a sharded run is compared against.
        """
        return merge_cell_shards([self.run_shard(devices)])

    def run_shard(self, devices: Sequence[DeviceSpec]) -> CellShard:
        """Run one device partition of a (possibly larger) cell.

        Returns the shard's open partial result; hand every shard of the
        cell to :func:`merge_cell_shards` to close the timelines at the
        globally resolved end time and assemble the :class:`CellResult`.
        The caller owns the partition: device ids must be unique *across*
        shards, and any cross-shard coupling of the dormancy policy (e.g. a
        load-aware switch budget) must be partitioned by the caller — each
        shard's policy instance only ever sees its own shard's load.

        With ``engine="vector"`` the shard is produced by the numpy batch
        backend (byte-identical results, ``CellShard.vector_devices``
        records how many devices took the batch path); it silently uses
        this scalar path when numpy is missing or the base-station policy
        arbitrates requests against live load.
        """
        _check_policy_isolation(devices)
        if self._backend == "vector":
            from ..sim import vector_engine

            if vector_engine.numpy_available() and (
                vector_engine.station_always_grants(self._dormancy_policy)
            ):
                return vector_engine.run_shard_vector(self, devices)
        if not devices:
            raise ValueError("at least one device is required")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise ValueError("device ids must be unique")

        profile = self._engine.profile
        self._dormancy_policy.reset()

        contexts: dict[int, UeContext] = {}
        streams: dict[int, Iterable[Packet]] = {}
        for spec in devices:
            if isinstance(spec.trace, PacketTrace):
                spec.policy.prepare(spec.trace, profile)
            elif getattr(spec.policy, "requires_trace", False):
                # Offline policies (oracle, trace-trained baselines) read
                # the whole trace in prepare(); feeding them an empty one
                # would yield silently wrong results.
                raise ValueError(
                    f"device {spec.device_id}: policy {spec.policy.name!r} "
                    "requires the full trace in prepare() and cannot run "
                    "on a lazy packet source; materialise the trace "
                    "(PacketTrace) for this device instead"
                )
            else:
                # Streaming path: profile-only binding, no trace ever
                # materialised.  Online learners set up their energy model
                # here and learn packet-by-packet inside the kernel.
                spec.policy.bind_profile(profile)
            spec.policy.reset()
            contexts[spec.device_id] = UeContext(
                spec.device_id, profile, spec.policy, collect=False,
                start_time=spec.attach_at,
            )
            streams[spec.device_id] = spec.trace

        handovers = {
            spec.device_id: spec.detach_at
            for spec in devices
            if spec.detach_at is not None
        }
        load = CellLoad(total_devices=len(devices), window_s=_LOAD_WINDOW_S)
        outcome = self._engine.run(
            streams,
            contexts,
            station=_NetworkStation(self._dormancy_policy),
            load=load,
            sample_interval_s=self._sample_interval,
            finish=False,
            handovers=handovers or None,
        )

        shard_devices = [
            _shard_device_state(spec, contexts[spec.device_id])
            for spec in devices
        ]
        return CellShard(
            dormancy_policy_name=self._dormancy_policy.name,
            profile=profile,
            trailing_time=self._engine.trailing_time,
            devices=tuple(shard_devices),
            last_emitted=outcome.last_emitted,
            max_now=outcome.end_time,
            load=load,
            load_samples=outcome.samples,
            sample_interval_s=self._sample_interval,
        )


def _shard_device_state(spec: DeviceSpec, ue: UeContext) -> ShardDeviceState:
    """Export one kernel context's open folded state for a shard result.

    Shared by the scalar shard run and the vector backend's scalar
    fallback group — the same reads in the same order either way.
    """
    (data_j, data_time_s, active_time_s, high_idle_time_s,
     idle_time_s, switch_j) = ue.folded_totals()
    machine = ue.machine
    records = tuple(spec.policy.learning_records())
    first_delay = float(getattr(records[0], "delay_used", 0.0)) if records else 0.0
    final_delay = float(getattr(records[-1], "delay_used", 0.0)) if records else 0.0
    return ShardDeviceState(
        device_id=spec.device_id,
        policy_name=spec.policy.name,
        data_j=data_j,
        data_time_s=data_time_s,
        active_time_s=active_time_s,
        high_idle_time_s=high_idle_time_s,
        idle_time_s=idle_time_s,
        switch_j=switch_j,
        promotions=ue.promotions,
        timer_demotions=ue.timer_demotions,
        fast_demotions=ue.fast_demotions,
        open_state=machine.state,
        open_since=machine.segment_start,
        last_activity=machine.last_activity,
        packets=ue.packet_count,
        dormancy_requests=ue.dormancy_requests,
        dormancy_granted=ue.dormancy_granted,
        dormancy_denied=ue.dormancy_denied,
        session_delays=tuple(ue.session_delays),
        delayed_sessions=ue.delayed_sessions,
        total_session_delay_s=ue.total_delay_s,
        cohort=spec.cohort,
        learn_iterations=len(records),
        learn_delay_first_s=first_delay,
        learn_delay_final_s=final_delay,
        closed=ue.departed,
    )


def _close_device(
    dev: ShardDeviceState, profile: CarrierProfile, end_time: float
) -> tuple[float, float, float, int]:
    """Close one device's open timeline at ``end_time``.

    Replays exactly what :meth:`RrcStateMachine.finish` (pending timer
    demotions via ``_apply_timers``, then the final fold-at-transition
    interval accounting) would have folded — the same boundary
    comparisons, the same per-interval additions, in the same order — so
    the result is bit-equal to the single-process close at the same
    ``end_time``.  Returns the closed ``(active_time_s, high_idle_time_s,
    idle_time_s, timer_demotions)``.
    """
    active = dev.active_time_s
    high = dev.high_idle_time_s
    idle = dev.idle_time_s
    timer_demotions = dev.timer_demotions
    state = dev.open_state
    seg = dev.open_since
    if state is RadioState.ACTIVE:
        demote_at = dev.last_activity + profile.t1
        if end_time >= demote_at:
            if profile.has_high_idle_state:
                if demote_at > seg:
                    active = active + (demote_at - seg)
                timer_demotions += 1
                state = RadioState.HIGH_IDLE
                seg = demote_at
                idle_at = demote_at + profile.t2
                if end_time >= idle_at:
                    if idle_at > seg:
                        high = high + (idle_at - seg)
                    timer_demotions += 1
                    state = RadioState.IDLE
                    seg = idle_at
            else:
                if demote_at > seg:
                    active = active + (demote_at - seg)
                timer_demotions += 1
                state = RadioState.IDLE
                seg = demote_at
    elif state is RadioState.HIGH_IDLE:
        idle_at = seg + profile.t2
        if end_time >= idle_at:
            if idle_at > seg:
                high = high + (idle_at - seg)
            timer_demotions += 1
            state = RadioState.IDLE
            seg = idle_at
    if end_time > seg:
        tail = end_time - seg
        if state in (RadioState.ACTIVE, RadioState.PROMOTING):
            active = active + tail
        elif state is RadioState.HIGH_IDLE:
            high = high + tail
        else:
            idle = idle + tail
    return active, high, idle, timer_demotions


def _close_columns(
    combined: ShardTable, profile: CarrierProfile, end_time: float
) -> tuple[list[float], list[float], list[float], list[int]]:
    """Close every open timeline of ``combined`` at ``end_time``.

    The columnar form of :func:`_close_device`: the columns are pulled to
    Python scalars once and each device runs the identical scalar float
    ops (the boundary comparisons and per-interval additions of
    :meth:`RrcStateMachine.finish`, in the same order), so the closed
    state times are bit-equal to a per-row close at any shard count.
    Handover-closed devices pass through untouched.  Returns the closed
    ``(active_time_s, high_idle_time_s, idle_time_s, timer_demotions)``
    lists.
    """
    active = combined.column("active_time_s").tolist()
    high = combined.column("high_idle_time_s").tolist()
    idle = combined.column("idle_time_s").tolist()
    tdem = combined.column("timer_demotions").tolist()
    closed = combined.closed_flags.tolist()
    states = combined.open_state_codes.tolist()
    open_since = combined.column("open_since").tolist()
    last_activity = combined.column("last_activity").tolist()

    t1 = profile.t1
    t2 = profile.t2
    has_high = profile.has_high_idle_state
    code_active = combined.state_code(RadioState.ACTIVE)
    code_high = combined.state_code(RadioState.HIGH_IDLE)
    code_idle = combined.state_code(RadioState.IDLE)
    code_promoting = combined.state_code(RadioState.PROMOTING)

    for i in range(len(active)):
        if closed[i]:
            # A handover already closed this timeline at its departure
            # instant; the exported totals are final.
            continue
        a = active[i]
        h = high[i]
        idl = idle[i]
        td = tdem[i]
        state = states[i]
        seg = open_since[i]
        if state == code_active:
            demote_at = last_activity[i] + t1
            if end_time >= demote_at:
                if has_high:
                    if demote_at > seg:
                        a = a + (demote_at - seg)
                    td += 1
                    state = code_high
                    seg = demote_at
                    idle_at = demote_at + t2
                    if end_time >= idle_at:
                        if idle_at > seg:
                            h = h + (idle_at - seg)
                        td += 1
                        state = code_idle
                        seg = idle_at
                else:
                    if demote_at > seg:
                        a = a + (demote_at - seg)
                    td += 1
                    state = code_idle
                    seg = demote_at
        elif state == code_high:
            idle_at = seg + t2
            if end_time >= idle_at:
                if idle_at > seg:
                    h = h + (idle_at - seg)
                td += 1
                state = code_idle
                seg = idle_at
        if end_time > seg:
            tail = end_time - seg
            if state == code_active or state == code_promoting:
                a = a + tail
            elif state == code_high:
                h = h + tail
            else:
                idl = idl + tail
        active[i] = a
        high[i] = h
        idle[i] = idl
        tdem[i] = td
    return active, high, idle, tdem


def _merged_switch_times(shards: Sequence[CellShard]) -> FloatArray:
    """All shards' switch timestamps as one time-ordered column.

    Each shard's timeline is time-ordered and the device partitions are
    disjoint, so a value sort of the concatenation equals the streamed
    heap-merge interleaving (equal floats are interchangeable).
    """
    if len(shards) == 1:
        return FloatArray(shards[0].load.switch_times)
    if _np is not None:
        parts = [
            _np.asarray(shard.load.switch_times, dtype=_np.float64)
            for shard in shards
        ]
        return FloatArray(_np.sort(_np.concatenate(parts)))
    merged: list[float] = []
    for shard in shards:
        merged.extend(shard.load.switch_times)
    merged.sort()
    return FloatArray(merged)


def _merge_load_samples(shards: Sequence[CellShard]) -> tuple[LoadSample, ...]:
    """Align every shard's samples on the shared grid and sum them.

    All shards sample on the same grid (same interval, same accumulation
    of float times from zero), so grid times match exactly; a shard whose
    events ended earlier simply stops contributing — by then all of its
    devices are Idle, so its contribution would be zero active devices,
    and only switches still inside the sliding window are undercounted.
    """
    by_time: dict[float, list[int]] = {}
    for shard in shards:
        for sample in shard.load_samples:
            acc = by_time.setdefault(sample.time, [0, 0])
            acc[0] += sample.active_devices
            acc[1] += sample.switches_last_minute
    return tuple(
        LoadSample(time=time, active_devices=active, switches_last_minute=switches)
        for time, (active, switches) in sorted(by_time.items())
    )


def merge_cell_shards(shards: Sequence[CellShard]) -> CellResult:
    """Merge per-shard partial results into one :class:`CellResult`.

    Per-device records are finished here: the global end time is resolved
    from every shard's observations exactly as a single kernel run would
    resolve it, and each device's final open interval is folded with the
    same float operations the single-process finish performs — so for
    shard-independent dormancy policies the merged per-device results are
    byte-identical to an unsharded run at any shard count.

    Aggregates: switch timelines interleave exactly (disjoint device
    partitions), so ``switch_times`` — and the peak-switches metric
    computed from it — are exact.  ``load_samples`` are summed on the
    shared sample grid.  ``peak_active_devices`` is exact for one shard;
    for several it is recomputed from the merged sample series when
    sampling was on, else it falls back to the sum of per-shard peaks (an
    upper bound) — see ``docs/DESIGN.md``.
    """
    if not shards:
        raise ValueError("at least one shard is required")
    first = shards[0]
    for shard in shards[1:]:
        if shard.profile != first.profile:
            raise ValueError("shards were run against different carrier profiles")
        if shard.dormancy_policy_name != first.dormancy_policy_name:
            raise ValueError("shards were run under different dormancy policies")
        if shard.trailing_time != first.trailing_time:
            raise ValueError("shards were run with different trailing times")
        if shard.sample_interval_s != first.sample_interval_s:
            raise ValueError("shards were run with different sample grids")

    combined = (
        first.devices if len(shards) == 1
        else ShardTable.concat([shard.devices for shard in shards])
    )
    ids = combined.column("device_id")
    if _np is not None:
        unique_ids = int(_np.unique(ids).size)
    else:
        unique_ids = len(set(ids.tolist()))
    if unique_ids != len(combined):
        raise ValueError("shards overlap: device ids must be unique across shards")

    emitted = [s.last_emitted for s in shards if s.last_emitted is not None]
    last_emitted = max(emitted) if emitted else None
    max_now = max(shard.max_now for shard in shards)
    end_time = resolve_end_time(last_emitted, max_now, first.trailing_time)

    profile = first.profile
    costs = signaling_costs_for(profile.technology)

    # Close every open timeline with the exact per-device scalar float ops
    # (see _close_columns / _close_device), then derive the energy columns
    # elementwise — the same op sequence assemble_breakdown runs per row.
    active_l, high_l, idle_l, tdem_l = _close_columns(
        combined, profile, end_time
    )
    active_col = _float_col(active_l)
    high_col = _float_col(high_l)
    idle_col = _float_col(idle_l)
    data_time_col = combined.column("data_time_s")
    active_tail_j, high_idle_tail_j, idle_j = derive_tail_columns(
        profile, data_time_col, active_col, high_col, idle_col
    )
    fast_l = combined.column("fast_demotions").tolist()
    demotions_col = _int_col([t + f for t, f in zip(tdem_l, fast_l)])

    promotions = sum(combined.column("promotions").tolist())  # repro-lint: allow[left-fold] reason=integer switch counts; exact order-independent arithmetic
    timer_demotions = sum(tdem_l)  # repro-lint: allow[left-fold] reason=integer switch counts; exact order-independent arithmetic
    fast_demotions = sum(fast_l)  # repro-lint: allow[left-fold] reason=integer switch counts; exact order-independent arithmetic

    device_table = DeviceTable.from_columns(
        {
            "data_j": combined.column("data_j"),
            "active_tail_j": active_tail_j,
            "high_idle_tail_j": high_idle_tail_j,
            "idle_j": idle_j,
            "switch_j": combined.column("switch_j"),
            "data_time_s": data_time_col,
            "active_time_s": active_col,
            "high_idle_time_s": high_col,
            "idle_time_s": idle_col,
            "total_session_delay_s": combined.column("total_session_delay_s"),
            "device_id": ids,
            "promotions": combined.column("promotions"),
            "demotions": demotions_col,
            "packets": combined.column("packets"),
            "dormancy_requests": combined.column("dormancy_requests"),
            "dormancy_granted": combined.column("dormancy_granted"),
            "dormancy_denied": combined.column("dormancy_denied"),
            "delayed_sessions": combined.column("delayed_sessions"),
            "learn_iterations": combined.column("learn_iterations"),
            "learn_delay_first_s": combined.column("learn_delay_first_s"),
            "learn_delay_final_s": combined.column("learn_delay_final_s"),
        },
        combined.policy_codes, combined.policy_cats,
        combined.cohort_codes, combined.cohort_cats,
        combined.delays,
    )

    samples = _merge_load_samples(shards)
    if len(shards) == 1:
        peak_active = first.load.peak_active_devices  # exact
    elif samples:
        peak_active = max(sample.active_devices for sample in samples)
    else:
        # Sum of per-shard peaks: an upper bound (shards peak at
        # different moments) — same rule CellLoad.merged applies.
        peak_active = sum(shard.load.peak_active_devices for shard in shards)  # repro-lint: allow[left-fold] reason=integer per-shard peaks; exact arithmetic

    signaling = SignalingLoad(
        promotions=promotions,
        timer_demotions=timer_demotions,
        fast_dormancy_demotions=fast_demotions,
        messages=(
            promotions * costs.messages_for(SwitchKind.PROMOTION)
            + timer_demotions * costs.messages_for(SwitchKind.TIMER_DEMOTION)
            + fast_demotions * costs.messages_for(SwitchKind.FAST_DORMANCY)
        ),
        duration_s=end_time,
    )
    return CellResult(
        dormancy_policy_name=first.dormancy_policy_name,
        devices=device_table,
        signaling=signaling,
        duration_s=end_time,
        peak_active_devices=peak_active,
        switch_times=_merged_switch_times(shards),
        load_samples=samples,
        vector_devices=sum(shard.vector_devices for shard in shards),  # repro-lint: allow[left-fold] reason=integer device count; exact arithmetic
    )
