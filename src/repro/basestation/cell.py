"""Multi-device cell simulation with network-controlled fast dormancy.

This is the substrate for the paper's future-work question (§8): what
happens at the base station when *many* phones run MakeIdle and trigger
fast dormancy?  The simulator replays one packet trace per device, each
against its own RRC state machine and device-side policy, while a single
:class:`~repro.basestation.policies.DormancyPolicy` arbitrates every
fast-dormancy request using a live snapshot of cell load.

Since the kernel refactor, :class:`CellSimulator` is a thin façade over
:class:`~repro.sim.engine.SimulationEngine` — the same heap-based event
kernel behind the single-device :class:`~repro.sim.TraceSimulator` — so
devices get the *full* device-side semantics, including the MakeActive
promotion-delaying path that the pre-kernel cell simulator did not model:
a device running a combined MakeIdle+MakeActive policy buffers and batches
sessions exactly as it does in a single-UE run, while the base station
still arbitrates its fast-dormancy requests.

Scope and simplifications
-------------------------

* Channel capacity is not modelled; the cell tracks occupancy and
  signalling load but never blocks a promotion.  This matches the paper's
  scope (energy and signalling, not throughput).
* Device traces may be materialised :class:`~repro.traces.packet.PacketTrace`
  objects *or* lazy packet iterables (see :mod:`repro.traces.streaming`).
  With lazy sources the kernel holds one pending packet per device and the
  per-device energy accounting folds incrementally, so memory is bounded by
  the number of attached devices — 10k+-device cells are practical.
  Offline policies that inspect the whole trace in ``prepare`` (the Oracle,
  trace-trained baselines) need materialised traces; online policies work
  with either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping, Sequence, Union

from ..core.policy import RadioPolicy
from ..energy.accounting import EnergyBreakdown
from ..metrics.switches import peak_per_window
from ..rrc.profiles import CarrierProfile
from ..rrc.signaling import SignalingLoad, signaling_costs_for
from ..rrc.state_machine import SwitchKind
from ..sim.engine import (
    CellLoad,
    DormancyStation,
    LoadSample,
    SimulationEngine,
    UeContext,
)
from ..sim.results import SessionDelay
from ..traces.packet import Packet, PacketTrace
from .policies import (
    AcceptAllDormancy,
    CellLoadSnapshot,
    DormancyPolicy,
)

__all__ = ["DeviceSpec", "DeviceResult", "CellResult", "CellSimulator"]

#: Length of the sliding window used for the cell's switches-per-minute load.
_LOAD_WINDOW_S = 60.0

#: A device workload: a materialised trace or a lazy time-ordered source.
TraceSource = Union[PacketTrace, Iterable[Packet]]


@dataclass(frozen=True)
class DeviceSpec:
    """One device attached to the cell: its identity, trace and policy.

    ``trace`` may be a :class:`~repro.traces.packet.PacketTrace` or any
    iterable of packets in non-decreasing timestamp order (a generator from
    :mod:`repro.traces.streaming`); lazy sources keep cell memory bounded by
    the device count.
    """

    device_id: int
    trace: TraceSource
    policy: RadioPolicy

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError(f"device_id must be non-negative, got {self.device_id}")


@dataclass(frozen=True)
class DeviceResult:
    """Per-device outcome of a cell simulation."""

    device_id: int
    policy_name: str
    breakdown: EnergyBreakdown
    dormancy_requests: int
    dormancy_granted: int
    dormancy_denied: int
    packets: int = 0
    #: Sample of this device's delayed-session records (capped per UE so
    #: long MakeActive runs stay bounded); totals are in the counters below.
    session_delays: tuple[SessionDelay, ...] = field(default=(), repr=False)
    delayed_sessions: int = 0
    total_session_delay_s: float = 0.0

    @property
    def total_energy_j(self) -> float:
        """Total device energy over the run, joules."""
        return self.breakdown.total_j

    @property
    def denial_rate(self) -> float:
        """Fraction of this device's dormancy requests that were denied."""
        if self.dormancy_requests == 0:
            return 0.0
        return self.dormancy_denied / self.dormancy_requests

    @property
    def mean_session_delay_s(self) -> float:
        """Mean MakeActive delay over this device's *delayed* sessions."""
        if self.delayed_sessions == 0:
            return 0.0
        return self.total_session_delay_s / self.delayed_sessions


@dataclass(frozen=True)
class CellResult:
    """Aggregate outcome of a cell simulation."""

    dormancy_policy_name: str
    devices: tuple[DeviceResult, ...]
    signaling: SignalingLoad
    duration_s: float
    peak_active_devices: int
    switch_times: tuple[float, ...] = field(default=(), repr=False)
    load_samples: tuple[LoadSample, ...] = field(default=(), repr=False)

    @property
    def total_energy_j(self) -> float:
        """Energy summed over every device, joules."""
        return sum(d.total_energy_j for d in self.devices)

    @property
    def total_switches(self) -> int:
        """State switches summed over every device."""
        return self.signaling.switches

    @property
    def total_packets(self) -> int:
        """Packets transferred summed over every device."""
        return sum(d.packets for d in self.devices)

    @property
    def dormancy_requests(self) -> int:
        """Fast-dormancy requests summed over every device."""
        return sum(d.dormancy_requests for d in self.devices)

    @property
    def dormancy_denied(self) -> int:
        """Denied fast-dormancy requests summed over every device."""
        return sum(d.dormancy_denied for d in self.devices)

    @property
    def denial_rate(self) -> float:
        """Cell-wide fraction of dormancy requests that were denied."""
        requests = self.dormancy_requests
        return self.dormancy_denied / requests if requests else 0.0

    @cached_property
    def _sorted_switch_times(self) -> tuple[float, ...]:
        """Switch timestamps sorted once and reused by windowed metrics."""
        return tuple(sorted(self.switch_times))

    @cached_property
    def peak_switches_per_minute(self) -> int:
        """Largest number of switches observed in any 60-second window.

        Computed (and the underlying timestamps sorted) once on first
        access; repeated reads are O(1).
        """
        return peak_per_window(self._sorted_switch_times, _LOAD_WINDOW_S,
                               presorted=True)

    @cached_property
    def _devices_by_id(self) -> Mapping[int, DeviceResult]:
        """Device-id index built once on first lookup."""
        return {result.device_id: result for result in self.devices}

    def device(self, device_id: int) -> DeviceResult:
        """Return the result for one device id (O(1) after the first call)."""
        try:
            return self._devices_by_id[device_id]
        except KeyError:
            raise KeyError(f"no device with id {device_id}") from None


class _NetworkStation(DormancyStation):
    """Adapts a :class:`DormancyPolicy` to the kernel's station hook."""

    def __init__(self, policy: DormancyPolicy) -> None:
        self._policy = policy

    def decide(self, ue_id: int, time: float, load: CellLoad) -> bool:
        snapshot = CellLoadSnapshot(
            time=time,
            active_devices=load.active_devices,
            total_devices=load.total_devices,
            switches_last_minute=load.switches_within_window(time),
        )
        return self._policy.decide(ue_id, time, snapshot).granted


class CellSimulator:
    """Replays several devices' traces against one base station.

    Parameters
    ----------
    profile:
        Carrier profile shared by every device in the cell.
    dormancy_policy:
        Base-station policy answering fast-dormancy requests; defaults to
        the paper's always-accept assumption.
    load_sample_interval_s:
        When set, the kernel records a cell-load sample every this many
        seconds (``CellResult.load_samples``).
    """

    def __init__(
        self,
        profile: CarrierProfile,
        dormancy_policy: DormancyPolicy | None = None,
        load_sample_interval_s: float | None = None,
    ) -> None:
        self._engine = SimulationEngine(profile)
        self._dormancy_policy = (
            dormancy_policy if dormancy_policy is not None else AcceptAllDormancy()
        )
        self._sample_interval = load_sample_interval_s

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile shared by all devices."""
        return self._engine.profile

    @property
    def dormancy_policy(self) -> DormancyPolicy:
        """The base-station dormancy policy."""
        return self._dormancy_policy

    @property
    def engine(self) -> SimulationEngine:
        """The shared event kernel this façade drives."""
        return self._engine

    def run(self, devices: Sequence[DeviceSpec]) -> CellResult:
        """Simulate all devices and return per-device and aggregate results."""
        if not devices:
            raise ValueError("at least one device is required")
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise ValueError("device ids must be unique")

        profile = self._engine.profile
        self._dormancy_policy.reset()

        contexts: dict[int, UeContext] = {}
        streams: dict[int, Iterable[Packet]] = {}
        for spec in devices:
            if isinstance(spec.trace, PacketTrace):
                prepared = spec.trace
            elif getattr(spec.policy, "requires_trace", False):
                # Offline policies (oracle, trace-trained baselines) read
                # the whole trace in prepare(); feeding them an empty one
                # would yield silently wrong results.
                raise ValueError(
                    f"device {spec.device_id}: policy {spec.policy.name!r} "
                    "requires the full trace in prepare() and cannot run "
                    "on a lazy packet source; materialise the trace "
                    "(PacketTrace) for this device instead"
                )
            else:
                prepared = PacketTrace(())
            spec.policy.prepare(prepared, profile)
            spec.policy.reset()
            contexts[spec.device_id] = UeContext(
                spec.device_id, profile, spec.policy, collect=False
            )
            streams[spec.device_id] = spec.trace

        load = CellLoad(total_devices=len(devices), window_s=_LOAD_WINDOW_S)
        outcome = self._engine.run(
            streams,
            contexts,
            station=_NetworkStation(self._dormancy_policy),
            load=load,
            sample_interval_s=self._sample_interval,
        )

        costs = signaling_costs_for(profile.technology)
        promotions = timer_demotions = fast_demotions = 0
        device_results = []
        for spec in devices:
            ue = contexts[spec.device_id]
            promotions += ue.promotions
            timer_demotions += ue.timer_demotions
            fast_demotions += ue.fast_demotions
            device_results.append(
                DeviceResult(
                    device_id=spec.device_id,
                    policy_name=spec.policy.name,
                    breakdown=ue.build_breakdown(profile),
                    dormancy_requests=ue.dormancy_requests,
                    dormancy_granted=ue.dormancy_granted,
                    dormancy_denied=ue.dormancy_denied,
                    packets=ue.packet_count,
                    session_delays=tuple(ue.session_delays),
                    delayed_sessions=ue.delayed_sessions,
                    total_session_delay_s=ue.total_delay_s,
                )
            )

        signaling = SignalingLoad(
            promotions=promotions,
            timer_demotions=timer_demotions,
            fast_dormancy_demotions=fast_demotions,
            messages=(
                promotions * costs.messages_for(SwitchKind.PROMOTION)
                + timer_demotions * costs.messages_for(SwitchKind.TIMER_DEMOTION)
                + fast_demotions * costs.messages_for(SwitchKind.FAST_DORMANCY)
            ),
            duration_s=outcome.end_time,
        )
        return CellResult(
            dormancy_policy_name=self._dormancy_policy.name,
            devices=tuple(device_results),
            signaling=signaling,
            duration_s=outcome.end_time,
            peak_active_devices=load.peak_active_devices,
            switch_times=tuple(load.switch_times),
            load_samples=outcome.samples,
        )
