"""Experiment configuration objects with JSON round-tripping.

The benchmark harness, the CLI and the examples all need to describe the
same few experiment knobs — which carrier, which workload, how long, which
schemes, which random seed.  :class:`ExperimentConfig` captures those knobs
in one validated place, and the JSON helpers make configurations easy to
store alongside results so every number in EXPERIMENTS.md can be traced
back to the exact parameters that produced it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from .rrc.profiles import CARRIER_PROFILES
from .traces.synthetic import APPLICATION_NAMES
from .traces.users import USER_POPULATIONS

__all__ = [
    "WorkloadConfig",
    "ExperimentConfig",
    "load_config",
    "save_config",
    "load_plan",
    "save_plan",
]

#: Scheme names understood by :func:`repro.core.controller.build_scheme`:
#: the paper's six comparison schemes, the status-quo baseline, and the
#: predictor-ablation MakeIdle variants (decayed histogram / exponential
#: rate) that the learning tournament sweeps alongside them.
KNOWN_SCHEMES: tuple[str, ...] = (
    "status_quo",
    "fixed_4.5s",
    "p95_iat",
    "makeidle",
    "oracle",
    "makeidle+makeactive_learn",
    "makeidle+makeactive_fixed",
    "makeidle_hist",
    "makeidle_rate",
)


@dataclass(frozen=True)
class WorkloadConfig:
    """What traffic to replay.

    Exactly one of the three sources is used, selected by ``kind``:

    * ``"application"`` — a synthetic single-application trace
      (``name`` must be one of the paper's seven categories);
    * ``"user"`` — a synthetic user-day mixture (``name`` is the population,
      ``user_id`` selects the user);
    * ``"pcap"`` / ``"tcpdump"`` — a capture file at ``path``.
    """

    kind: str = "application"
    name: str = "email"
    user_id: int = 1
    path: str = ""
    duration_s: float = 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("application", "user", "pcap", "tcpdump"):
            raise ValueError(
                "workload kind must be 'application', 'user', 'pcap' or "
                f"'tcpdump', got {self.kind!r}"
            )
        if self.kind == "application" and self.name not in APPLICATION_NAMES:
            raise ValueError(
                f"unknown application {self.name!r}; known: {APPLICATION_NAMES}"
            )
        if self.kind == "user" and self.name not in USER_POPULATIONS:
            raise ValueError(
                f"unknown user population {self.name!r}; known: "
                f"{tuple(USER_POPULATIONS)}"
            )
        if self.kind in ("pcap", "tcpdump") and not self.path:
            raise ValueError(f"a {self.kind} workload requires a file path")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.user_id < 1:
            raise ValueError(f"user_id must be >= 1, got {self.user_id}")

    def build_trace(self):
        """Materialise the workload as a :class:`~repro.traces.packet.PacketTrace`."""
        from .traces.pcap import read_pcap
        from .traces.synthetic import generate_application_trace
        from .traces.tcpdump import read_tcpdump
        from .traces.users import user_trace

        if self.kind == "application":
            return generate_application_trace(
                self.name, duration=self.duration_s, seed=self.seed
            )
        if self.kind == "user":
            return user_trace(
                self.name,
                self.user_id,
                hours_per_day=self.duration_s / 3600.0,
                seed=self.seed,
            )
        if self.kind == "pcap":
            return read_pcap(self.path)
        return read_tcpdump(self.path).trace


@dataclass(frozen=True)
class ExperimentConfig:
    """One complete experiment: a workload, a carrier, and the schemes to run."""

    carrier: str = "att_hspa"
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    schemes: tuple[str, ...] = ("status_quo", "makeidle", "oracle")
    window_size: int = 100
    label: str = ""

    def __post_init__(self) -> None:
        if self.carrier not in CARRIER_PROFILES:
            raise ValueError(
                f"unknown carrier {self.carrier!r}; known: {sorted(CARRIER_PROFILES)}"
            )
        if not self.schemes:
            raise ValueError("at least one scheme is required")
        unknown = [s for s in self.schemes if s not in KNOWN_SCHEMES]
        if unknown:
            raise ValueError(
                f"unknown schemes {unknown}; known: {list(KNOWN_SCHEMES)}"
            )
        if "status_quo" not in self.schemes:
            raise ValueError("schemes must include 'status_quo' (the baseline)")
        if self.window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {self.window_size}")

    def with_carrier(self, carrier: str) -> "ExperimentConfig":
        """Return a copy of this configuration targeting a different carrier."""
        return replace(self, carrier=carrier)

    def to_plan(self):
        """Lift this single-cell configuration into an ExperimentPlan.

        The plan has one trace, one carrier and this config's scheme list as
        its policy axis, so legacy config files plug straight into the
        plan → runner → runset lifecycle of :mod:`repro.api`.
        """
        # Imported lazily: repro.api uses this module's KNOWN_SCHEMES.
        from .api import ExperimentPlan, PolicySpec, TraceSpec

        workload = self.workload
        if workload.kind == "user":
            trace = TraceSpec(kind="user", name=workload.name,
                              user_id=workload.user_id,
                              duration_s=workload.duration_s, seed=workload.seed)
        elif workload.kind == "application":
            trace = TraceSpec(kind="application", name=workload.name,
                              duration_s=workload.duration_s, seed=workload.seed)
        else:
            trace = TraceSpec(kind=workload.kind, path=workload.path)
        return ExperimentPlan(
            trace_specs=(trace,),
            carrier_keys=(self.carrier,),
            policy_specs=tuple(PolicySpec(scheme=s) for s in self.schemes),
            default_window=self.window_size,
            name=self.label,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON serialisation."""
        data = asdict(self)
        data["schemes"] = list(self.schemes)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        """Re-create a configuration from :meth:`to_dict` output."""
        payload = dict(data)
        workload = payload.pop("workload", {})
        schemes: Sequence[str] = payload.pop("schemes", cls().schemes)
        return cls(
            workload=WorkloadConfig(**workload),
            schemes=tuple(schemes),
            **payload,
        )


def save_plan(plan: Any, path: str | Path) -> None:
    """Write an :class:`~repro.api.plan.ExperimentPlan` to a JSON file.

    Together with :func:`load_plan` this makes a whole sweep reproducible
    from a config file: the plan's axes, seeds and window size round-trip
    exactly (inline traces and custom policy factories refuse serialisation).
    """
    Path(path).write_text(
        json.dumps(plan.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_plan(path: str | Path):
    """Read an :class:`~repro.api.plan.ExperimentPlan` from a JSON file."""
    from .api import ExperimentPlan

    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object at the top level")
    return ExperimentPlan.from_dict(data)


def save_config(config: ExperimentConfig, path: str | Path) -> None:
    """Write an experiment configuration to a JSON file."""
    Path(path).write_text(
        json.dumps(config.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_config(path: str | Path) -> ExperimentConfig:
    """Read an experiment configuration from a JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object at the top level")
    return ExperimentConfig.from_dict(data)
