"""The ``repro-lint`` command line.

Typical invocations::

    repro-lint src tools benchmarks              # the CI gate
    repro-lint --list-rules                      # what is enforced, and why
    repro-lint --format json src                 # machine-readable findings
    repro-lint --write-baseline src tools benchmarks   # re-grandfather

Exit codes: 0 clean (baselined/suppressed findings included), 1 at least
one violation, 2 usage or environment error.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence, TextIO

from .baseline import Baseline, BaselineError, DEFAULT_BASELINE_NAME
from .engine import LintEngine
from .report import render_github_annotations, render_json, render_text
from .rules import ALL_RULES, build_rules


def find_root(start: Path) -> Path:
    """Walk up from ``start`` to the repo root (marked by .git or setup.py)."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        if (candidate / ".git").exists() or (candidate / "setup.py").exists():
            return candidate
    return current


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static determinism-contract checks for the repro codebase: "
            "machine-checks the byte-identity rules DESIGN.md documents."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src", "tools", "benchmarks"],
        help="files or directories to lint, relative to --root "
        "(default: src tools benchmarks)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root rule scopes resolve against "
        "(default: auto-detected from the working directory)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report grandfathered findings too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings "
        "(suppressed findings stay suppressed; notes are carried over)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--github-annotations",
        action="store_true",
        help="additionally emit ::error workflow commands on stderr "
        "(auto-enabled when GITHUB_ACTIONS=true)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rules (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rules (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its contract and scope, then exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also report unused pragmas",
    )
    return parser


def _split_rule_args(values: Sequence[str] | None) -> list[str] | None:
    if not values:
        return None
    out: list[str] = []
    for value in values:
        out.extend(v.strip() for v in value.split(",") if v.strip())
    return out or None


def list_rules(out: TextIO) -> None:
    for cls in ALL_RULES:
        out.write(f"{cls.id}\n")
        out.write(f"    {cls.title}\n")
        out.write(f"    contract: {cls.contract}\n")
        scope = ", ".join(cls.scope) if cls.scope else "everything linted"
        out.write(f"    scope: {scope}\n")
        out.write(f"    fix: {cls.hint}\n")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        list_rules(sys.stdout)
        return 0

    root = args.root.resolve() if args.root else find_root(Path.cwd())
    baseline_path = (
        args.baseline if args.baseline is not None
        else root / DEFAULT_BASELINE_NAME
    )

    try:
        rules = build_rules(
            select=_split_rule_args(args.select),
            ignore=_split_rule_args(args.ignore),
        )
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    try:
        previous = Baseline.load(baseline_path)
    except BaselineError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    baseline = Baseline([]) if (args.no_baseline or args.write_baseline) else (
        Baseline(previous.entries)
    )

    engine = LintEngine(root=root, rules=rules, baseline=baseline)
    try:
        result = engine.run([Path(t) for t in args.targets])
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        fresh = Baseline.from_findings(result.violations, previous=previous)
        fresh.write(baseline_path)
        print(
            f"wrote {len(fresh)} baseline entries to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        render_json(result, sys.stdout)
    else:
        render_text(result, sys.stdout, verbose=args.verbose)

    if args.github_annotations or os.environ.get("GITHUB_ACTIONS") == "true":
        render_github_annotations(result, sys.stderr)

    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
