"""Per-line suppression pragmas.

A finding is suppressed by annotating the flagged physical line::

    total = sum(counts)  # repro-lint: allow[left-fold] reason=integer counts

Rules are comma-separated inside the brackets (``allow[left-fold,float-eq]``)
and the reason is mandatory: an ``allow`` with no reason does not suppress
anything and instead raises a ``bad-pragma`` finding, so every accepted
exception carries its justification next to the code it excuses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .findings import Finding

PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:reason=(?P<reason>.*\S))?\s*$"
)

#: Engine-level finding ids that no pragma may suppress (a malformed pragma
#: must not be able to excuse itself).
UNSUPPRESSABLE = frozenset({"bad-pragma", "parse-error"})


@dataclass(slots=True)
class Pragma:
    """One parsed ``allow`` pragma and its use count."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: int = field(default=0)


def scan_pragmas(lines: list[str]) -> tuple[dict[int, Pragma], list[Finding]]:
    """Parse every pragma comment in ``lines`` (1-based line keys).

    Returns the pragma table plus ``bad-pragma`` findings for malformed
    entries (empty rule list or missing reason).
    """
    table: dict[int, Pragma] = {}
    bad: list[Finding] = []
    for lineno, raw in enumerate(lines, start=1):
        match = PRAGMA_RE.search(raw)
        if match is None:
            if "repro-lint:" in raw and not raw.lstrip().startswith("#: "):
                # A pragma-looking comment that did not parse is almost
                # certainly a typo'd suppression — surface it rather than
                # silently ignoring it.  Documentation prose mentioning the
                # literal marker lives in docstrings, which contain no "#".
                if re.search(r"#\s*repro-lint:", raw):
                    bad.append(
                        _bad_pragma(lineno, raw, "unrecognised pragma syntax")
                    )
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not rules:
            bad.append(_bad_pragma(lineno, raw, "empty rule list in allow[...]"))
            continue
        if not reason:
            bad.append(
                _bad_pragma(
                    lineno,
                    raw,
                    "missing reason= — every suppression must say why",
                )
            )
            continue
        table[lineno] = Pragma(line=lineno, rules=rules, reason=reason)
    return table, bad


def _bad_pragma(lineno: int, raw: str, detail: str) -> Finding:
    return Finding(
        rule="bad-pragma",
        path="",  # filled in by the engine, which knows the relpath
        line=lineno,
        col=max(raw.find("#"), 0),
        message=f"malformed repro-lint pragma: {detail}",
        hint="write `# repro-lint: allow[rule-id] reason=...` with a non-empty reason",
        context=raw.strip(),
    )


def suppresses(pragma: Pragma | None, rule: str) -> bool:
    """Whether ``pragma`` (possibly None) suppresses ``rule`` on its line."""
    if pragma is None or rule in UNSUPPRESSABLE:
        return False
    if rule in pragma.rules:
        pragma.used += 1
        return True
    return False
