"""repro-lint: AST-based determinism-contract checks for this codebase.

The byte-identity guarantees this repo ships (shard merges, the vector
backend, the columnar core, streaming learners) rest on conventions
documented in ``docs/DESIGN.md`` — hashed seed derivation, strict left-fold
accumulation, pure-function kernels, per-UE policy isolation.  This package
machine-checks those conventions: each rule names the contract section it
enforces and the historical bug that motivated it, findings are suppressed
per line with ``# repro-lint: allow[rule] reason=...`` pragmas or
grandfathered in the committed baseline, and CI fails on anything else.

The linter reads source as text (``ast``) and never imports the code under
analysis, so it runs on interpreters without the library's optional
dependencies installed.
"""

from .baseline import Baseline, BaselineEntry, BaselineError
from .engine import LintEngine, LintResult
from .findings import Finding
from .rules import ALL_RULES, build_rules, rule_ids

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "LintEngine",
    "LintResult",
    "build_rules",
    "rule_ids",
]
