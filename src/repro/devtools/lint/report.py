"""Reporters: human text, machine JSON, GitHub Actions annotations."""

from __future__ import annotations

import json
from typing import TextIO

from .engine import LintResult
from .findings import Finding

REPORT_VERSION = 1


def render_text(result: LintResult, out: TextIO, verbose: bool = False) -> None:
    for finding in sorted(
        result.violations, key=lambda f: (f.path, f.line, f.rule)
    ):
        out.write(f"{finding.location()}: [{finding.rule}] {finding.message}\n")
        if finding.context:
            out.write(f"    {finding.context}\n")
        if finding.hint:
            out.write(f"    fix: {finding.hint}\n")
        if finding.contract:
            out.write(f"    contract: {finding.contract}\n")
    for entry in result.stale_baseline:
        out.write(
            f"stale baseline entry: [{entry.rule}] {entry.path} "
            f"({entry.context!r}) — fixed? run --write-baseline to drop it\n"
        )
    if verbose:
        for path, pragma in result.unused_pragmas:
            out.write(
                f"{path}:{pragma.line}: unused pragma allow"
                f"[{','.join(pragma.rules)}] — suppresses nothing\n"
            )
    out.write(
        f"{result.files_checked} files checked, "
        f"{len(result.active_rules)} rules active: "
        f"{len(result.violations)} violations, "
        f"{len(result.suppressed)} suppressed by pragma, "
        f"{len(result.baselined)} baselined"
        + (f", {len(result.stale_baseline)} stale baseline entries"
           if result.stale_baseline else "")
        + "\n"
    )


def render_json(result: LintResult, out: TextIO) -> None:
    payload = {
        "version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "active_rules": result.active_rules,
        "violations": [f.to_dict() for f in result.violations],
        "suppressed": [
            {**f.to_dict(), "reason": p.reason} for f, p in result.suppressed
        ],
        "baselined": [
            {**f.to_dict(), "note": e.note} for f, e in result.baselined
        ],
        "stale_baseline": [e.to_dict() for e in result.stale_baseline],
        "unused_pragmas": [
            {"path": path, "line": p.line, "rules": list(p.rules)}
            for path, p in result.unused_pragmas
        ],
        "exit_code": result.exit_code,
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def render_github_annotations(result: LintResult, out: TextIO) -> None:
    """``::error`` workflow commands — GitHub renders them inline on the PR."""
    for finding in result.violations:
        out.write(_annotation("error", finding))
    for entry in result.stale_baseline:
        out.write(
            f"::warning file={entry.path},title=repro-lint stale baseline::"
            f"[{entry.rule}] baseline entry no longer matches any finding "
            f"({_escape(entry.context)})\n"
        )


def _annotation(level: str, finding: Finding) -> str:
    message = finding.message
    if finding.hint:
        message += f" — fix: {finding.hint}"
    if finding.contract:
        message += f" ({finding.contract})"
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"col={finding.col + 1},title=repro-lint {finding.rule}::"
        f"{_escape(message)}\n"
    )


def _escape(text: str) -> str:
    """GitHub workflow-command data escaping."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )
