"""The lint engine: discover, parse, run rules, suppress, baseline.

Pure static analysis — files are read as text and parsed with :mod:`ast`;
the code under analysis is never imported, so the linter runs identically
on interpreters with or without the library's optional dependencies.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline, BaselineEntry
from .findings import Finding
from .pragmas import Pragma, scan_pragmas, suppresses
from .rules import ParsedModule, Rule, build_rules

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass(slots=True)
class LintResult:
    """Everything one lint run produced, pre-partitioned for reporting."""

    violations: list[Finding] = field(default_factory=list)
    baselined: list[tuple[Finding, BaselineEntry]] = field(default_factory=list)
    suppressed: list[tuple[Finding, Pragma]] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    unused_pragmas: list[tuple[str, Pragma]] = field(default_factory=list)
    files_checked: int = 0
    active_rules: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0

    def all_findings(self) -> list[Finding]:
        """Every raw finding (violations + baselined + suppressed)."""
        return (
            self.violations
            + [f for f, _ in self.baselined]
            + [f for f, _ in self.suppressed]
        )


class LintEngine:
    def __init__(
        self,
        root: Path,
        rules: list[Rule] | None = None,
        baseline: Baseline | None = None,
    ) -> None:
        self.root = root.resolve()
        self.rules = rules if rules is not None else build_rules()
        self.baseline = baseline if baseline is not None else Baseline([])

    # -- discovery --------------------------------------------------------

    def discover(self, targets: list[Path]) -> list[Path]:
        """Expand file/directory targets into a sorted list of .py files."""
        files: set[Path] = set()
        for target in targets:
            resolved = target if target.is_absolute() else self.root / target
            if resolved.is_dir():
                for candidate in sorted(resolved.rglob("*.py")):
                    if not _SKIP_DIRS.intersection(candidate.parts):
                        files.add(candidate)
            elif resolved.is_file():
                files.add(resolved)
            else:
                raise FileNotFoundError(f"lint target does not exist: {target}")
        return sorted(files)

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    # -- execution --------------------------------------------------------

    def run(self, targets: list[Path]) -> LintResult:
        result = LintResult(active_rules=[rule.id for rule in self.rules])
        for path in self.discover(targets):
            self._lint_file(path, result)
        result.stale_baseline = self.baseline.stale_entries()
        return result

    def _lint_file(self, path: Path, result: LintResult) -> None:
        relpath = self._relpath(path)
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        result.files_checked += 1

        pragma_table, bad_pragmas = scan_pragmas(lines)
        for finding in bad_pragmas:
            self._route(
                dataclasses.replace(finding, path=relpath), pragma_table, result
            )

        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            result.violations.append(
                Finding(
                    rule="parse-error",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                    hint="repro-lint needs syntactically valid Python",
                    context=(exc.text or "").strip(),
                )
            )
            return

        module = ParsedModule(
            relpath=relpath, source=source, lines=tuple(lines), tree=tree
        )
        seen: set[tuple[str, str, int, str]] = set()
        for rule in self.rules:
            if not rule.applies_to(relpath):
                continue
            for finding in rule.check(module):
                dedup = (finding.rule, finding.path, finding.line, finding.message)
                if dedup in seen:
                    continue
                seen.add(dedup)
                self._route(finding, pragma_table, result)

        for lineno in sorted(pragma_table):
            pragma = pragma_table[lineno]
            if pragma.used == 0:
                result.unused_pragmas.append((relpath, pragma))

    def _route(
        self,
        finding: Finding,
        pragma_table: dict[int, Pragma],
        result: LintResult,
    ) -> None:
        pragma = pragma_table.get(finding.line)
        if suppresses(pragma, finding.rule):
            assert pragma is not None
            result.suppressed.append((finding, pragma))
            return
        entry = self.baseline.consume(finding)
        if entry is not None:
            result.baselined.append((finding, entry))
            return
        result.violations.append(finding)
