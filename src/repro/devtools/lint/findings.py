"""The finding record shared by rules, suppression, baselining and reports."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One determinism-contract violation anchored to a source line.

    ``context`` is the stripped text of the flagged physical line; the
    committed baseline matches on ``(rule, path, context)`` rather than on
    line numbers so unrelated edits above a grandfathered finding do not
    invalidate the baseline.
    """

    rule: str
    path: str  # repo-relative POSIX path
    line: int  # 1-based physical line of the flagged node
    col: int  # 0-based column offset
    message: str
    hint: str = ""
    contract: str = ""  # the DESIGN.md section this rule enforces
    context: str = field(default="", compare=False)

    def key(self) -> tuple[str, str, str]:
        """Baseline-matching key — line numbers deliberately excluded."""
        return (self.rule, self.path, self.context)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "contract": self.contract,
            "context": self.context,
        }
