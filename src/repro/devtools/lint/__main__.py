"""``python -m repro.devtools.lint`` — same entry as the repro-lint script."""

import sys

from .cli import main

sys.exit(main())
