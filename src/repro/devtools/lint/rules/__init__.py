"""The rule registry.

``ALL_RULES`` is the canonical ordered list of contract rules; the engine
instantiates from here and the CLI's ``--list-rules`` / ``--select`` /
``--ignore`` resolve against it.  Adding a rule = adding a module with a
:class:`~repro.devtools.lint.rules.base.Rule` subclass and listing its
class below.
"""

from __future__ import annotations

from .base import ParsedModule, Rule
from .float_eq import FloatEqRule
from .hot_path_slots import HotPathSlotsRule
from .kernel_nondeterminism import KernelNondeterminismRule
from .left_fold import LeftFoldRule
from .registry_bypass import RegistryBypassRule
from .seed_stride import SeedStrideRule
from .shared_mutable_policy import SharedMutablePolicyRule
from .unordered_iteration import UnorderedIterationRule

__all__ = [
    "ALL_RULES",
    "ParsedModule",
    "Rule",
    "build_rules",
    "rule_ids",
]

ALL_RULES: tuple[type[Rule], ...] = (
    SeedStrideRule,
    LeftFoldRule,
    KernelNondeterminismRule,
    UnorderedIterationRule,
    FloatEqRule,
    RegistryBypassRule,
    HotPathSlotsRule,
    SharedMutablePolicyRule,
)


def rule_ids() -> list[str]:
    return [cls.id for cls in ALL_RULES]


def build_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Rule]:
    """Instantiate the active rule set, validating unknown ids loudly."""
    known = set(rule_ids())
    for requested in (select or []) + (ignore or []):
        if requested not in known:
            raise ValueError(
                f"unknown rule {requested!r} (known: {', '.join(sorted(known))})"
            )
    active = []
    for cls in ALL_RULES:
        if select and cls.id not in select:
            continue
        if ignore and cls.id in ignore:
            continue
        active.append(cls())
    return active
