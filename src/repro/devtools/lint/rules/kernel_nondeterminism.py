"""kernel-nondeterminism: no ambient entropy or wall clocks in kernel code.

The contract (DESIGN.md §§1–2): a kernel run is a pure function of (trace,
profile, policy, seed).  Global-state randomness (``random.random`` and
friends), wall/monotonic clocks, process entropy (``os.urandom``,
``uuid``, ``secrets``) and the per-process-salted builtin ``hash()`` all
break replay — ``random.Random(seed)`` instances and ``zlib.crc32`` are
the sanctioned sources.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ParsedModule, Rule

#: random-module attributes that are fine: seeded generator classes.
_RANDOM_OK = frozenset({"Random"})

_CLOCK_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time"}
)
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_ENTROPY_MODULES = frozenset({"uuid", "secrets"})


class KernelNondeterminismRule(Rule):
    id = "kernel-nondeterminism"
    title = "ambient entropy / wall clock in kernel code"
    contract = "DESIGN.md §1–§2"
    hint = (
        "kernel results are a pure function of (trace, profile, policy, "
        "seed): use random.Random(seed) / zlib.crc32 labels, and take "
        "timestamps from the event stream, never the host"
    )
    scope = (
        "src/repro/sim/",
        "src/repro/core/",
        "src/repro/metro/",
        "tools/refresh_golden.py",
        "tools/check_bench_floor.py",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(module, node)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "hash":
                    yield self.finding(
                        module,
                        node,
                        "builtin hash() is salted per process — use "
                        "zlib.crc32 on a namespaced label",
                    )

    def _check_attribute(
        self, module: ParsedModule, node: ast.Attribute
    ) -> Iterator[Finding]:
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else ""
        if base_name == "random" and node.attr not in _RANDOM_OK:
            yield self.finding(
                module,
                node,
                f"random.{node.attr} uses the shared global generator — "
                "construct random.Random(seed) instead",
            )
        elif base_name == "time" and node.attr in _CLOCK_ATTRS:
            yield self.finding(
                module, node, f"time.{node.attr} reads the host clock"
            )
        elif node.attr in _DATETIME_ATTRS and (
            base_name == "datetime"
            or (isinstance(base, ast.Attribute) and base.attr == "datetime")
        ):
            yield self.finding(
                module, node, f"datetime {node.attr}() reads the host clock"
            )
        elif base_name == "os" and node.attr == "urandom":
            yield self.finding(module, node, "os.urandom is process entropy")
        elif base_name in _ENTROPY_MODULES:
            yield self.finding(
                module,
                node,
                f"{base_name}.{node.attr} draws process entropy",
            )
