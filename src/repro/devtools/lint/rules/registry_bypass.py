"""registry-bypass: library code builds policies through build_scheme.

The contract (DESIGN.md §6): ``repro.core.controller.build_scheme`` is the
single construction point for scheme policies — it guarantees a fresh
instance per call, which is what makes per-UE learner isolation (the PR 9
rule) auditable.  Direct construction of a policy class in library code
bypasses the registry: it can silently drift from the scheme's canonical
parameters and reintroduce shared-instance hazards.  Tests, benchmarks and
``repro.core`` itself (where the classes live) are exempt by scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ParsedModule, Rule

#: The registry-managed policy classes (every constructor build_scheme owns).
POLICY_CLASSES = frozenset(
    {
        "StatusQuoPolicy",
        "FixedTimerPolicy",
        "PercentileIatPolicy",
        "MakeIdlePolicy",
        "OraclePolicy",
        "CombinedPolicy",
        "LearningMakeActive",
        "FixedDelayMakeActive",
        "PredictiveMakeIdlePolicy",
        "TopHintPolicy",
        "TailEnderPolicy",
        "TailTheftPolicy",
        "InteractiveAwarePolicy",
    }
)


class RegistryBypassRule(Rule):
    id = "registry-bypass"
    title = "direct policy construction outside the registry"
    contract = "DESIGN.md §6"
    hint = (
        "construct through repro.core.controller.build_scheme(scheme, "
        "window_size) — the registry is the per-UE freshness guarantee; if "
        "the call site needs the live instance's internals, pragma it with "
        "that reason"
    )
    # Library code only: repro.core defines the classes and hosts the
    # registry, tests/benchmarks intentionally construct exotic variants.
    scope = ("src/repro/",)

    _EXEMPT = ("src/repro/core/",)

    def applies_to(self, relpath: str) -> bool:
        if any(relpath.startswith(prefix) for prefix in self._EXEMPT):
            return False
        return super().applies_to(relpath)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = ""
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in POLICY_CLASSES:
                yield self.finding(
                    module,
                    node,
                    f"direct {name}(...) construction bypasses the "
                    "build_scheme registry",
                )
