"""float-eq: exact float equality only at documented tie-break boundaries.

The contract (DESIGN.md §1): the kernel's tie-breaks are *defined* as exact
float comparisons (equal-time event ordering, zero-gap boundaries), and
those few comparisons are documented.  Everywhere else, ``==``/``!=``
between float expressions is almost always a latent bug — a quantity that
arrives through a different (but mathematically equal) sequence of float
ops will not compare equal.  Each legitimate exact comparison carries a
pragma naming the boundary it implements.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ParsedModule, Rule, call_name


def _is_floatish(node: ast.AST) -> bool:
    """Conservatively: literally-float expressions only.

    Variables of float type are invisible to an untyped AST; the rule
    anchors on float literals, ``float(...)`` conversions and unary minus
    of either, which is where the repo's exact comparisons actually live.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call) and call_name(node) == "float":
        return True
    return False


class FloatEqRule(Rule):
    id = "float-eq"
    title = "exact float equality comparison"
    contract = "DESIGN.md §1"
    hint = (
        "if this implements a documented tie-break/boundary, add "
        "`# repro-lint: allow[float-eq] reason=<which boundary>`; otherwise "
        "compare against an ordering (<, <=) or use math.isclose"
    )
    scope = ("src/", "tools/")

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module,
                        node,
                        f"exact float `{symbol}` comparison — only documented "
                        "tie-break boundaries may compare floats exactly",
                    )
                    break  # one finding per comparison chain
