"""hot-path-slots: kernel dataclasses are slotted; no replace() on hot paths.

The contract (DESIGN.md §2.2, the PR 5 hot-path overhaul): objects the
kernel allocates per event or per packet declare ``__slots__`` (or
``@dataclass(slots=True)``) so attribute access stays a fixed-offset load
and per-instance dicts never appear in the hot path; and
``dataclasses.replace`` — which re-runs ``__init__`` and field validation
per call — is banned in packet-block paths, where blocks are built once
and shifted by direct construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ParsedModule, Rule, imported_names

_SLOTS_SCOPE = ("src/repro/sim/", "src/repro/rrc/tables.py")
_REPLACE_SCOPE = (
    "src/repro/sim/",
    "src/repro/traces/streaming.py",
    "src/repro/metro/streams.py",
)


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return dec
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return dec
    return None


def _declares_slots(node: ast.ClassDef, decorator: ast.expr) -> bool:
    if isinstance(decorator, ast.Call):
        for kw in decorator.keywords:
            if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        if isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class HotPathSlotsRule(Rule):
    id = "hot-path-slots"
    title = "unslotted kernel dataclass / replace() on a packet-block path"
    contract = "DESIGN.md §2.2"
    hint = (
        "declare @dataclass(slots=True) (or __slots__) on kernel "
        "dataclasses; build shifted packets by direct construction instead "
        "of dataclasses.replace"
    )
    scope = _SLOTS_SCOPE + _REPLACE_SCOPE

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        relpath = module.relpath
        in_slots_scope = any(
            relpath == p or relpath.startswith(p) for p in _SLOTS_SCOPE
        )
        in_replace_scope = any(
            relpath == p or relpath.startswith(p) for p in _REPLACE_SCOPE
        )
        replace_aliases = imported_names(module.tree, "dataclasses", "replace")
        for node in ast.walk(module.tree):
            if in_slots_scope and isinstance(node, ast.ClassDef):
                decorator = _dataclass_decorator(node)
                if decorator is not None and not _declares_slots(node, decorator):
                    yield self.finding(
                        module,
                        node,
                        f"kernel dataclass {node.name} does not declare "
                        "slots=True",
                    )
            elif in_replace_scope and isinstance(node, ast.Call):
                func = node.func
                is_replace = (
                    isinstance(func, ast.Name) and func.id in replace_aliases
                ) or (
                    isinstance(func, ast.Attribute)
                    and func.attr == "replace"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "dataclasses"
                )
                if is_replace:
                    yield self.finding(
                        module,
                        node,
                        "dataclasses.replace on a packet-block path — "
                        "construct the shifted record directly",
                    )
