"""unordered-iteration: never iterate a set where order can reach results.

The contract (DESIGN.md §2): event ordering, record emission and digest
computation are total orders.  CPython dicts iterate in insertion order
(deterministic given deterministic insertion), but set iteration order
depends on element hashes — and str hashes are salted per process — so in
identity-critical modules a set must pass through ``sorted(...)`` before
its elements can feed a loop, a comprehension or ``.pop()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ParsedModule, Rule, call_name

#: set-returning method names (on any object — conservatively set-ish).
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return True
        if name.split(".")[-1] in _SET_METHODS:
            return True
    return False


class UnorderedIterationRule(Rule):
    id = "unordered-iteration"
    title = "iteration over an unordered set"
    contract = "DESIGN.md §2"
    hint = (
        "wrap the set in sorted(...) before iterating (str hashes are "
        "salted per process, so set order is not even stable across runs)"
    )
    scope = (
        "src/repro/sim/",
        "src/repro/basestation/",
        "src/repro/metro/",
        "src/repro/rrc/",
        "src/repro/traces/streaming.py",
        "src/repro/reporting/golden.py",
        "tools/",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.finding(
                    module,
                    node.iter,
                    "for-loop iterates a set directly — element order is "
                    "hash-dependent",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(
                            module,
                            gen.iter,
                            "comprehension iterates a set directly — "
                            "element order is hash-dependent",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and not node.args
                    and _is_set_expr(func.value)
                ):
                    yield self.finding(
                        module,
                        node,
                        "set.pop() removes a hash-ordered arbitrary element",
                    )
