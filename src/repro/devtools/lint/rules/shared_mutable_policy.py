"""shared-mutable-policy: one stateful policy instance per device, always.

The contract (DESIGN.md §6, enforced at runtime by
``_check_policy_isolation`` since PR 9): a stateful policy instance may
serve exactly one device id — learners fold per-UE history, so sharing an
instance across devices corrupts every participant.  The runtime check
fires late (at cell construction); this rule catches the classic aliasing
shapes at the call site, where the fix is cheap:

* ``[policy] * n`` / ``(policy,) * n`` — n references to one instance;
* ``[policy for _ in ids]`` — same, spelled as a comprehension;
* ``itertools.repeat(policy, n)`` and ``dict.fromkeys(ids, policy)``.

A name is policy-ish when it says so (``...policy...``, ``...learner...``)
or when the replicated element is itself a policy-class construction
evaluated once outside the replication.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ParsedModule, Rule, call_name
from .registry_bypass import POLICY_CLASSES


def _policyish_name(name: str) -> bool:
    lowered = name.lower()
    return "policy" in lowered or "learner" in lowered


def _is_policy_element(node: ast.AST) -> bool:
    """A bare policy-ish name, or a one-shot policy construction."""
    if isinstance(node, ast.Name):
        return _policyish_name(node.id)
    if isinstance(node, ast.Attribute):
        return _policyish_name(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        cls = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return cls in POLICY_CLASSES
    return False


def _comp_targets(comp: ast.ListComp | ast.SetComp | ast.GeneratorExp) -> set[str]:
    names: set[str] = set()
    for gen in comp.generators:
        for sub in ast.walk(gen.target):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
    return names


class SharedMutablePolicyRule(Rule):
    id = "shared-mutable-policy"
    title = "one policy instance replicated across devices"
    contract = "DESIGN.md §6"
    hint = (
        "construct a fresh instance per device — build_scheme(scheme, "
        "window) inside the loop/comprehension — so each UE owns its "
        "learner state"
    )
    scope = ("src/repro/",)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
                for seq, other in ((node.left, node.right), (node.right, node.left)):
                    if (
                        isinstance(seq, (ast.List, ast.Tuple))
                        and len(seq.elts) == 1
                        and _is_policy_element(seq.elts[0])
                    ):
                        yield self.finding(
                            module,
                            node,
                            "sequence-multiplication replicates one policy "
                            "instance across every element",
                        )
                        break
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                elt = node.elt
                if (
                    isinstance(elt, ast.Name)
                    and _policyish_name(elt.id)
                    and elt.id not in _comp_targets(node)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"comprehension yields the same pre-built "
                        f"`{elt.id}` instance for every element",
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in ("itertools.repeat", "repeat") and node.args:
                    if _is_policy_element(node.args[0]):
                        yield self.finding(
                            module,
                            node,
                            "itertools.repeat replicates one policy instance",
                        )
                elif name.endswith(".fromkeys") and len(node.args) >= 2:
                    if _is_policy_element(node.args[1]):
                        yield self.finding(
                            module,
                            node,
                            "dict.fromkeys binds one policy instance to "
                            "every key",
                        )
