"""Rule base class and the AST helpers the contract rules share.

Every rule is pure static analysis over one parsed module: it never imports
the code under analysis, so the linter runs on interpreters where the
library's optional dependencies (numpy) are absent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..findings import Finding


@dataclass(frozen=True, slots=True)
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    relpath: str  # POSIX path relative to the lint root
    source: str
    lines: tuple[str, ...]
    tree: ast.Module

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """A determinism-contract check.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` is a tuple of repo-relative POSIX prefixes (directories end
    with ``/``); a rule only sees modules whose path starts with one of
    them, so rules stay scoped to the subsystems whose contract they
    enforce.
    """

    id: str = ""
    title: str = ""
    contract: str = ""  # DESIGN.md section (or PR contract) enforced
    hint: str = ""
    scope: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.scope:
            return True
        return any(
            relpath == prefix or relpath.startswith(prefix)
            for prefix in self.scope
        )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ParsedModule,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            path=module.relpath,
            line=lineno,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
            contract=self.contract,
            context=module.line_text(lineno),
        )


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

def call_name(node: ast.Call) -> str:
    """The called name: ``f(...)`` -> ``"f"``, ``m.f(...)`` -> ``"m.f"``.

    Deeper attribute chains keep only the last two components
    (``a.b.c(...)`` -> ``"b.c"``), which is what the rules match on.
    """
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            return f"{base.id}.{func.attr}"
        if isinstance(base, ast.Attribute):
            return f"{base.attr}.{func.attr}"
        return func.attr
    return ""


def attr_tail(node: ast.AST) -> str:
    """Last attribute component of a Name/Attribute node, else ``""``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def walk_skipping_calls(
    node: ast.AST, skip_call_names: frozenset[str]
) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into calls of the given names.

    Used by the seed-stride rule: a seed mentioned *inside* a
    ``crc32(f"...{seed}...")`` argument is the sanctioned idiom and must
    not count as an arithmetic participant.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, ast.Call):
                name = call_name(child)
                if name in skip_call_names or name.split(".")[-1] in skip_call_names:
                    continue
            stack.append(child)


def imported_names(tree: ast.Module, module_name: str, symbol: str) -> set[str]:
    """Local names bound to ``from module_name import symbol`` (with aliases)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module_name:
            for alias in node.names:
                if alias.name == symbol:
                    names.add(alias.asname or alias.name)
    return names
