"""seed-stride: arithmetic seed derivation must be the hashed crc32 idiom.

The contract (DESIGN.md §3, "substitution rule for non-public traces"):
derived seeds are ``zlib.crc32(f"<namespace>/<seed>/<index>".encode())`` —
never linear/multiplicative strides like ``seed + 13 * index``.  Strided
rules alias under composition: with consecutive per-device base seeds,
device ``i``'s application ``k`` replays device ``i + 13k``'s index-0
stream (the PR 3 app-seed bug), and a linear chunk stride made device
``i``'s chunk ``k`` identical to device ``i + 7919k``'s chunk 0 (the PR 2
chunk-seed bug).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ParsedModule, Rule, walk_skipping_calls

#: Hashing calls whose arguments are exempt: a seed interpolated into the
#: string fed to crc32 (or a sibling digest) is the sanctioned idiom.
_HASH_CALLS = frozenset({"crc32", "adler32", "sha256", "md5", "blake2b"})

#: Arithmetic that combines a seed into a stride.  Mod/flooring are left
#: alone (``crc32(...) % 2**31`` style range folding is fine).
_STRIDE_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.BitXor,
    ast.BitOr,
    ast.LShift,
    ast.RShift,
)


def _mentions_seed(node: ast.AST) -> bool:
    for sub in walk_skipping_calls(node, _HASH_CALLS):
        if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
            return True
        if isinstance(sub, ast.arg) and "seed" in sub.arg.lower():
            return True
    return False


class SeedStrideRule(Rule):
    id = "seed-stride"
    title = "arithmetic seed derivation"
    contract = "DESIGN.md §3"
    hint = (
        "derive seeds by hashing a namespaced label: "
        'zlib.crc32(f"<ns>/{seed}/{index}".encode()) — strided rules alias '
        "under composition (PR 2 chunk-seed and PR 3 app-seed bugs)"
    )
    scope = (
        "src/repro/traces/",
        "src/repro/scenarios/",
        "src/repro/metro/",
        "tools/",
        "benchmarks/",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        seen_lines: set[int] = set()
        for node in walk_skipping_calls(module.tree, _HASH_CALLS):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, _STRIDE_OPS):
                continue
            if not (_mentions_seed(node.left) or _mentions_seed(node.right)):
                continue
            if node.lineno in seen_lines:
                continue  # nested BinOps on one line are one derivation
            seen_lines.add(node.lineno)
            op = type(node.op).__name__
            yield self.finding(
                module,
                node,
                f"seed combined arithmetically ({op}) — strided seed "
                "derivations alias under composition",
            )
