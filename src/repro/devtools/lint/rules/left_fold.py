"""left-fold: identity-critical modules accumulate with explicit left folds.

The contract (DESIGN.md §§2.1, 5): every float total that reaches a record
is produced by a strict left fold — ``+=`` in source order or
``np.add.accumulate`` — because the shard merge *replays* the same IEEE-754
additions in the same order.  ``math.fsum`` (compensated) and ``np.sum``
(pairwise) produce different partial sums; the builtin ``sum()`` happens to
left-fold today but hides the contract and invites a numpy swap, so inside
the scoped modules every reduction must either spell the fold out or carry
a pragma explaining why it is exempt (e.g. exact integer arithmetic).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ParsedModule, Rule, call_name

_BANNED_CALLS = frozenset({"sum", "fsum", "math.fsum", "np.sum", "numpy.sum"})
_BANNED_ATTRS = frozenset({"sum", "fsum", "nansum", "cumsum"})


class LeftFoldRule(Rule):
    id = "left-fold"
    title = "reduction bypasses the strict left-fold contract"
    contract = "DESIGN.md §2.1, §5"
    hint = (
        "accumulate with an explicit `+=` loop or np.add.accumulate (strict "
        "left fold, same IEEE-754 partial sums the shard merge replays); "
        "integer reductions are exact — pragma them with that reason"
    )
    scope = (
        "src/repro/sim/",
        "src/repro/basestation/",
        "src/repro/metro/execution.py",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            tail = name.split(".")[-1]
            if name in _BANNED_CALLS or (
                isinstance(node.func, ast.Attribute) and tail in _BANNED_ATTRS
            ):
                yield self.finding(
                    module,
                    node,
                    f"`{name}(...)` in an identity-critical module — the "
                    "accumulation order is the contract, not an "
                    "implementation detail",
                )
