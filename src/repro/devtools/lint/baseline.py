"""The committed baseline of grandfathered findings.

The baseline is a JSON file (``.repro-lint-baseline.json`` at the repo root)
listing findings that predate the linter and are accepted *for now*, each
with a tracking note.  Entries match on ``(rule, path, stripped source
line)`` — not line numbers — so edits elsewhere in a file do not invalidate
them, and they match as a multiset: two identical lines need two entries.

A baselined finding does not fail the run; an entry whose finding has
disappeared is reported as *stale* so the file shrinks as debt is paid.
``repro-lint --write-baseline`` regenerates the file from the current tree
(preserving notes for entries that survive).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    rule: str
    path: str
    context: str
    note: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.context)

    def to_dict(self) -> dict[str, str]:
        data = {"rule": self.rule, "path": self.path, "context": self.context}
        if self.note:
            data["note"] = self.note
        return data


class Baseline:
    """Multiset of grandfathered findings with consume-once matching."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries: list[BaselineEntry] = list(entries or [])
        self._available: dict[tuple[str, str, str], list[BaselineEntry]] = {}
        for entry in self.entries:
            self._available.setdefault(entry.key(), []).append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def consume(self, finding: Finding) -> BaselineEntry | None:
        """Match ``finding`` against one unconsumed entry, if any."""
        bucket = self._available.get(finding.key())
        if bucket:
            return bucket.pop()
        return None

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries no current finding matched — debt already paid."""
        return [entry for bucket in self._available.values() for entry in bucket]

    # -- persistence ------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls([])
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has unsupported format "
                f"(expected version {BASELINE_VERSION})"
            )
        entries = []
        for raw in data.get("entries", []):
            if not isinstance(raw, dict):
                raise BaselineError(f"baseline {path}: malformed entry {raw!r}")
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]),
                        context=str(raw["context"]),
                        note=str(raw.get("note", "")),
                    )
                )
            except KeyError as exc:
                raise BaselineError(
                    f"baseline {path}: entry missing {exc} field: {raw!r}"
                ) from exc
        return cls(entries)

    @classmethod
    def from_findings(
        cls, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Build a fresh baseline, carrying notes over from ``previous``."""
        notes: dict[tuple[str, str, str], list[str]] = {}
        if previous is not None:
            for entry in previous.entries:
                if entry.note:
                    notes.setdefault(entry.key(), []).append(entry.note)
        entries = []
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            carried = notes.get(finding.key())
            note = carried.pop(0) if carried else ""
            entries.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    context=finding.context,
                    note=note,
                )
            )
        return cls(entries)

    def write(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Grandfathered repro-lint findings. Every entry is debt: "
                "fix the code or promote the entry to an inline pragma with "
                "a reason. Matched on (rule, path, stripped line), so line "
                "numbers never go stale; remove entries as they are fixed "
                "(`repro-lint --write-baseline` regenerates)."
            ),
            "entries": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


class BaselineError(RuntimeError):
    """A baseline file exists but cannot be used."""
