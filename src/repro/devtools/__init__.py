"""Developer tooling for the repro codebase.

Nothing in this package is part of the library's runtime surface: it holds
static-analysis and maintenance tools that operate *on* the source tree
(reading it as text) and therefore must stay importable with no third-party
dependencies installed — CI runs :mod:`repro.devtools.lint` on interpreter
matrices that deliberately omit numpy.
"""

__all__ = ["lint"]
